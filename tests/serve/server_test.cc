// AF_UNIX server round trip: a real socket client sends request lines and
// must get one deterministic response line per request; shutdown from
// another thread unblocks serve().  Also smoke-tests the anyoptd CLI's
// --oneshot mode end to end (build → publish → stdin/stdout protocol).

#include "serve/server.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/snapshot.h"

namespace anyopt::serve {
namespace {

std::shared_ptr<Snapshot> build_test_snapshot() {
  SnapshotOptions options;
  options.test_scale = true;
  Result<std::shared_ptr<Snapshot>> built = Snapshot::build(options);
  EXPECT_TRUE(built.ok()) << built.error().message;
  return built.ok() ? std::move(built).value() : nullptr;
}

/// Minimal blocking line client over one AF_UNIX connection.
class LineClient {
 public:
  explicit LineClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    // The server binds asynchronously; retry briefly.
    for (int attempt = 0; attempt < 100; ++attempt) {
      if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
          0) {
        connected_ = true;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool connected() const { return connected_; }

  /// Sends one line and reads one '\n'-terminated response.
  std::string round_trip(const std::string& line) {
    const std::string out = line + "\n";
    if (::send(fd_, out.data(), out.size(), 0) !=
        static_cast<ssize_t>(out.size())) {
      return "<send failed>";
    }
    std::string response;
    char c = 0;
    while (::recv(fd_, &c, 1, 0) == 1) {
      if (c == '\n') return response;
      response.push_back(c);
    }
    return "<connection closed: " + response + ">";
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

TEST(Server, AnswersOverARealSocketAndShutsDownCleanly) {
  std::shared_ptr<Snapshot> snapshot = build_test_snapshot();
  ASSERT_NE(snapshot, nullptr);
  Service service;
  service.publish(std::move(snapshot));

  const std::string socket_path = ::testing::TempDir() + "anyoptd_test.sock";
  std::remove(socket_path.c_str());
  Server server(service, ServerOptions{.socket_path = socket_path,
                                       .threads = 2});
  Status served = Error::state("serve never returned");
  std::thread serving([&] { served = server.serve(); });

  {
    LineClient client(socket_path);
    ASSERT_TRUE(client.connected()) << "could not connect to " << socket_path;
    const std::string info = client.round_trip("{\"op\":\"info\"}");
    EXPECT_EQ(info.rfind("{\"ok\":true", 0), 0u) << info;
    // Responses over the socket are the same bytes Service produces.
    EXPECT_EQ(client.round_trip("{\"op\":\"predict\",\"sites\":[1,0]}"),
              service.handle_line("{\"op\":\"predict\",\"sites\":[1,0]}"));
    // Errors keep the connection alive.
    const std::string err = client.round_trip("{\"op\":\"nope\"}");
    EXPECT_EQ(err.rfind("{\"ok\":false", 0), 0u) << err;
    EXPECT_EQ(client.round_trip("{\"op\":\"info\"}"), info);

    // A second concurrent connection answers identically.
    LineClient second(socket_path);
    ASSERT_TRUE(second.connected());
    EXPECT_EQ(second.round_trip("{\"op\":\"info\"}"), info);
  }

  server.shutdown();
  serving.join();
  EXPECT_TRUE(served.ok()) << served.error().message;
  std::remove(socket_path.c_str());
}

#ifdef ANYOPT_DAEMON_CLI
TEST(Server, OneshotCliAnswersRequestsFromStdin) {
  const std::string requests = ::testing::TempDir() + "anyoptd_requests.txt";
  const std::string responses = ::testing::TempDir() + "anyoptd_responses.txt";
  {
    std::FILE* f = std::fopen(requests.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"op\":\"info\"}\n"
               "{\"op\":\"predict\",\"sites\":[1,0],\"clients\":[0,2]}\n"
               "{\"op\":\"bogus\"}\n",
               f);
    std::fclose(f);
  }
  const std::string command = std::string(ANYOPT_DAEMON_CLI) +
                              " --oneshot --scale=small < " + requests +
                              " > " + responses + " 2> /dev/null";
  const int status = std::system(command.c_str());
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  std::FILE* f = std::fopen(responses.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::vector<std::string> lines;
  char buffer[65536];
  while (std::fgets(buffer, sizeof buffer, f) != nullptr) {
    lines.emplace_back(buffer);
  }
  std::fclose(f);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].rfind("{\"ok\":true,\"snapshot\":1,\"op\":\"info\"", 0),
            0u)
      << lines[0];
  EXPECT_EQ(lines[1].rfind("{\"ok\":true", 0), 0u) << lines[1];
  EXPECT_EQ(lines[2].rfind("{\"ok\":false", 0), 0u) << lines[2];
  // A bad flag mix exits with the usage error, not a crash.
  EXPECT_EQ(WEXITSTATUS(std::system(
                (std::string(ANYOPT_DAEMON_CLI) + " > /dev/null 2>&1").c_str())),
            2);
  std::remove(requests.c_str());
  std::remove(responses.c_str());
}
#endif  // ANYOPT_DAEMON_CLI

}  // namespace
}  // namespace anyopt::serve
