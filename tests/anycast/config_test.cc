#include "anycast/config.h"

#include <gtest/gtest.h>

#include "anycast/world.h"

namespace anyopt::anycast {
namespace {

class ConfigTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = World::create(WorldParams::test_scale(13)).release();
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static World* world_;
};

World* ConfigTest::world_ = nullptr;

TEST_F(ConfigTest, AllSitesEnablesEverySite) {
  const AnycastConfig cfg = AnycastConfig::all_sites(world_->deployment());
  EXPECT_EQ(cfg.enabled_site_count(), world_->deployment().site_count());
  for (std::size_t i = 0; i < world_->deployment().site_count(); ++i) {
    EXPECT_TRUE(cfg.site_enabled(SiteId{static_cast<SiteId::underlying_type>(i)}));
  }
}

TEST_F(ConfigTest, ScheduleSpacingAndOrder) {
  AnycastConfig cfg = AnycastConfig::of_sites({SiteId{4}, SiteId{1}});
  cfg.spacing_s = 100.0;
  const auto schedule = cfg.schedule(world_->deployment());
  ASSERT_EQ(schedule.size(), 2u);
  EXPECT_DOUBLE_EQ(schedule[0].time_s, 0.0);
  EXPECT_EQ(schedule[0].attachment,
            world_->deployment().transit_attachment(SiteId{4}));
  EXPECT_DOUBLE_EQ(schedule[1].time_s, 100.0);
  EXPECT_EQ(schedule[1].attachment,
            world_->deployment().transit_attachment(SiteId{1}));
  EXPECT_FALSE(schedule[0].withdraw);
}

TEST_F(ConfigTest, PeersAnnouncedAfterSites) {
  AnycastConfig cfg = AnycastConfig::of_sites({SiteId{0}});
  const auto peers = world_->deployment().all_peer_attachments();
  ASSERT_FALSE(peers.empty());
  cfg.enabled_peers = {peers[0], peers[1]};
  const auto schedule = cfg.schedule(world_->deployment());
  ASSERT_EQ(schedule.size(), 3u);
  EXPECT_GT(schedule[1].time_s, schedule[0].time_s);
  EXPECT_GT(schedule[2].time_s, schedule[1].time_s);
  EXPECT_EQ(schedule[1].attachment, peers[0]);
}

TEST_F(ConfigTest, SiteEnabledReflectsMembership) {
  const AnycastConfig cfg = AnycastConfig::of_sites({SiteId{2}, SiteId{9}});
  EXPECT_TRUE(cfg.site_enabled(SiteId{2}));
  EXPECT_TRUE(cfg.site_enabled(SiteId{9}));
  EXPECT_FALSE(cfg.site_enabled(SiteId{3}));
}

TEST_F(ConfigTest, PrependFlowsIntoSchedule) {
  AnycastConfig cfg = AnycastConfig::of_sites({SiteId{0}, SiteId{3}});
  cfg.prepend = {2, 0};
  const auto schedule = cfg.schedule(world_->deployment());
  ASSERT_EQ(schedule.size(), 2u);
  EXPECT_EQ(schedule[0].prepend, 2);
  EXPECT_EQ(schedule[1].prepend, 0);
}

TEST_F(ConfigTest, MissingPrependVectorDefaultsToZero) {
  const AnycastConfig cfg = AnycastConfig::of_sites({SiteId{1}});
  const auto schedule = cfg.schedule(world_->deployment());
  ASSERT_EQ(schedule.size(), 1u);
  EXPECT_EQ(schedule[0].prepend, 0);
}

TEST_F(ConfigTest, DescribeMentionsSitesAndPeers) {
  AnycastConfig cfg = AnycastConfig::of_sites({SiteId{0}, SiteId{4}});
  cfg.enabled_peers = {world_->deployment().all_peer_attachments()[0]};
  const std::string text = cfg.describe();
  EXPECT_NE(text.find("sites 1>5"), std::string::npos) << text;
  EXPECT_NE(text.find("peers: 1"), std::string::npos) << text;
}

}  // namespace
}  // namespace anyopt::anycast
