#include "anycast/world.h"

#include <gtest/gtest.h>

#include "topo/serialize.h"

namespace anyopt::anycast {
namespace {

TEST(WorldParams, PaperScaleMatchesEvaluationSetup) {
  const WorldParams p = WorldParams::paper_scale();
  EXPECT_EQ(p.targets.count, 15300);      // §3.2
  EXPECT_EQ(p.sites.size(), 15u);         // Table 1
  EXPECT_EQ(p.internet.tier1_names.size(), 6u);
  EXPECT_EQ(p.internet.required_tier1_pops.size(), 6u);
  EXPECT_DOUBLE_EQ(p.peer_scale, 1.0);    // all 104 peer links
}

TEST(WorldParams, TestScaleIsProportionallySmaller) {
  const WorldParams p = WorldParams::test_scale();
  EXPECT_LT(p.internet.stub_count, 500);
  EXPECT_LT(p.targets.count, 2000);
  EXPECT_LT(p.peer_scale, 1.0);
  EXPECT_EQ(p.sites.size(), 15u);  // deployment shape is never scaled
}

TEST(World, CreateWiresEverythingTogether) {
  auto world = World::create(WorldParams::test_scale(55));
  EXPECT_EQ(world->deployment().site_count(), 15u);
  EXPECT_EQ(world->targets().size(),
            static_cast<std::size_t>(world->params().targets.count));
  EXPECT_EQ(world->simulator().attachments().size(),
            world->deployment().attachments().size());
  EXPECT_TRUE(world->internet().graph.validate().ok());
}

TEST(World, SeedReproducesTopologyExactly) {
  auto a = World::create(WorldParams::test_scale(77));
  auto b = World::create(WorldParams::test_scale(77));
  EXPECT_EQ(topo::save_internet(a->internet()),
            topo::save_internet(b->internet()));
}

TEST(World, SomePeersAreFilteredSomeBackhauled) {
  auto world = World::create(WorldParams::paper_scale(99));
  std::size_t filtered = 0;
  std::size_t backhauled = 0;
  const auto peers = world->deployment().all_peer_attachments();
  for (const auto at : peers) {
    const bgp::OriginAttachment& a = world->deployment().attachments()[at];
    filtered += a.filtered;
    backhauled += a.latency_ms > 5.0;  // remote-peering trombone
  }
  ASSERT_EQ(peers.size(), 104u);
  // ~25% filtered, ~30% backhauled (binomial spread allowed).
  EXPECT_GT(filtered, 13u);
  EXPECT_LT(filtered, 40u);
  EXPECT_GT(backhauled, 15u);
  EXPECT_LT(backhauled, 46u);
}

TEST(World, TransitAttachmentsAreNeverFiltered) {
  auto world = World::create(WorldParams::test_scale(42));
  for (std::size_t s = 0; s < world->deployment().site_count(); ++s) {
    const auto at = world->deployment().transit_attachment(
        SiteId{static_cast<SiteId::underlying_type>(s)});
    EXPECT_FALSE(world->deployment().attachments()[at].filtered);
    EXPECT_EQ(world->deployment().attachments()[at].med, 0u);
  }
}

TEST(World, PaperScaleTargetDemographicsMatchPaper) {
  auto world = World::create(WorldParams::paper_scale(1897));
  // §3.2: 15,300 targets, 12,143 /24s, 5,317 ASes — require same order of
  // magnitude and the right relative structure.
  EXPECT_EQ(world->targets().size(), 15300u);
  EXPECT_GT(world->targets().distinct_slash24(), 10000u);
  EXPECT_LT(world->targets().distinct_slash24(), 15300u);
  EXPECT_GT(world->targets().distinct_ases(), 3500u);
  EXPECT_LT(world->targets().distinct_ases(), 6500u);
}

}  // namespace
}  // namespace anyopt::anycast
