#include "anycast/targets.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace anyopt::anycast {
namespace {

topo::Internet small_net(std::uint64_t seed) {
  topo::InternetParams p;
  p.regional_transit_count = 10;
  p.access_transit_count = 14;
  p.stub_count = 150;
  p.extra_pops_per_tier1_min = 2;
  p.extra_pops_per_tier1_max = 3;
  p.seed = seed;
  return topo::build_internet(p);
}

TEST(Targets, GeneratesRequestedCount) {
  const topo::Internet net = small_net(1);
  TargetParams params;
  params.count = 500;
  const TargetPopulation pop = TargetPopulation::generate(net, params);
  EXPECT_EQ(pop.size(), 500u);
}

TEST(Targets, AddressesAreUnique) {
  const topo::Internet net = small_net(2);
  TargetParams params;
  params.count = 800;
  const TargetPopulation pop = TargetPopulation::generate(net, params);
  std::unordered_set<net::Ipv4> addrs;
  for (const Target& t : pop.all()) addrs.insert(t.address);
  EXPECT_EQ(addrs.size(), pop.size());
}

TEST(Targets, TargetsLiveInTheirSlash24) {
  const topo::Internet net = small_net(3);
  TargetParams params;
  params.count = 400;
  const TargetPopulation pop = TargetPopulation::generate(net, params);
  for (const Target& t : pop.all()) {
    EXPECT_TRUE(t.network.contains(t.address));
    EXPECT_EQ(t.network.length(), 24);
  }
}

TEST(Targets, FewerSlash24sThanTargets) {
  // Paper ratio: 15,300 targets over 12,143 /24s (~1.26 targets per /24).
  const topo::Internet net = small_net(4);
  TargetParams params;
  params.count = 1000;
  const TargetPopulation pop = TargetPopulation::generate(net, params);
  EXPECT_LT(pop.distinct_slash24(), pop.size());
  EXPECT_GT(pop.distinct_slash24(), pop.size() / 2);
}

TEST(Targets, CoversManyButNotAllAses) {
  const topo::Internet net = small_net(5);
  TargetParams params;
  params.count = 1000;
  params.as_coverage = 0.7;
  const TargetPopulation pop = TargetPopulation::generate(net, params);
  const std::size_t stubs = net.graph.ases_of_tier(topo::Tier::kStub).size();
  EXPECT_GT(pop.distinct_ases(), stubs / 3);
  EXPECT_LT(pop.distinct_ases(), stubs + 40);
}

TEST(Targets, HeavyTailedPerAsDistribution) {
  const topo::Internet net = small_net(6);
  TargetParams params;
  params.count = 1200;
  const TargetPopulation pop = TargetPopulation::generate(net, params);
  std::unordered_map<std::uint32_t, int> per_as;
  for (const Target& t : pop.all()) ++per_as[t.as.value()];
  int max_count = 0;
  for (const auto& [as, n] : per_as) max_count = std::max(max_count, n);
  const double mean =
      static_cast<double>(pop.size()) / static_cast<double>(per_as.size());
  EXPECT_GT(max_count, 2 * mean);  // tail exists
}

TEST(Targets, DeterministicForSeed) {
  const topo::Internet net = small_net(7);
  TargetParams params;
  params.count = 300;
  params.seed = 42;
  const TargetPopulation a = TargetPopulation::generate(net, params);
  const TargetPopulation b = TargetPopulation::generate(net, params);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const TargetId id{static_cast<TargetId::underlying_type>(i)};
    EXPECT_EQ(a.target(id).address, b.target(id).address);
    EXPECT_EQ(a.target(id).as, b.target(id).as);
  }
}

TEST(Targets, LocationsNearTheirAs) {
  const topo::Internet net = small_net(8);
  TargetParams params;
  params.count = 300;
  const TargetPopulation pop = TargetPopulation::generate(net, params);
  for (const Target& t : pop.all()) {
    const double km = geo::great_circle_km(
        t.where, net.graph.node(t.as).location);
    EXPECT_LT(km, 500) << "target strayed too far from its AS";
  }
}

}  // namespace
}  // namespace anyopt::anycast
