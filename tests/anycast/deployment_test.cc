#include "anycast/deployment.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "anycast/world.h"

namespace anyopt::anycast {
namespace {

class DeploymentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = World::create(WorldParams::test_scale(11)).release();
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static World* world_;
};

World* DeploymentTest::world_ = nullptr;

TEST(Table1, SpecsMatchThePaper) {
  const auto specs = table1_specs();
  ASSERT_EQ(specs.size(), 15u);
  int total_peers = 0;
  for (const SiteSpec& s : specs) total_peers += s.peer_count;
  EXPECT_EQ(total_peers, 104);  // "The AnyOpt testbed includes 104 ... links"
  EXPECT_EQ(specs[0].metro, "Atlanta");
  EXPECT_EQ(specs[0].provider_name, "Telia");
  EXPECT_EQ(specs[3].peer_count, 15);  // Singapore / TATA
  EXPECT_EQ(specs[14].metro, "Chicago");
}

TEST(Table1, SixDistinctProviders) {
  std::unordered_set<std::string> providers;
  for (const SiteSpec& s : table1_specs()) providers.insert(s.provider_name);
  EXPECT_EQ(providers.size(), 6u);
}

TEST_F(DeploymentTest, FifteenSitesRealized) {
  EXPECT_EQ(world_->deployment().site_count(), 15u);
  EXPECT_EQ(world_->deployment().provider_count(), 6u);
}

TEST_F(DeploymentTest, TransitAttachmentIndexEqualsSiteId) {
  const Deployment& d = world_->deployment();
  for (std::size_t i = 0; i < d.site_count(); ++i) {
    const SiteId site{static_cast<SiteId::underlying_type>(i)};
    const auto at = d.transit_attachment(site);
    EXPECT_EQ(d.attachments()[at].site, site);
    EXPECT_EQ(d.attachments()[at].neighbor_is, topo::Relation::kProvider);
    EXPECT_EQ(d.attachments()[at].neighbor, d.provider_as(d.site(site).provider));
  }
}

TEST_F(DeploymentTest, PeerAttachmentsArePeersOfDistinctAses) {
  const Deployment& d = world_->deployment();
  std::unordered_set<std::uint32_t> peer_ases;
  for (const auto at : d.all_peer_attachments()) {
    const bgp::OriginAttachment& a = d.attachments()[at];
    EXPECT_EQ(a.neighbor_is, topo::Relation::kPeer);
    EXPECT_TRUE(peer_ases.insert(a.neighbor.value()).second)
        << "peer AS used twice";
    // Peers must never be tier-1s.
    EXPECT_NE(world_->internet().graph.node(a.neighbor).tier,
              topo::Tier::kTier1);
  }
}

TEST_F(DeploymentTest, PerSitePeerAttachmentsBelongToSite) {
  const Deployment& d = world_->deployment();
  std::size_t total = 0;
  for (std::size_t i = 0; i < d.site_count(); ++i) {
    const SiteId site{static_cast<SiteId::underlying_type>(i)};
    for (const auto at : d.peer_attachments(site)) {
      EXPECT_EQ(d.attachments()[at].site, site);
      ++total;
    }
  }
  EXPECT_EQ(total, d.all_peer_attachments().size());
}

TEST_F(DeploymentTest, SitesOfProviderPartitionSites) {
  const Deployment& d = world_->deployment();
  std::size_t total = 0;
  for (std::size_t p = 0; p < d.provider_count(); ++p) {
    total += d.sites_of_provider(
                  ProviderId{static_cast<ProviderId::underlying_type>(p)})
                 .size();
  }
  EXPECT_EQ(total, d.site_count());
  // NTT hosts four sites in Table 1 (Tokyo, Osaka, Miami, Newark).
  for (std::size_t p = 0; p < d.provider_count(); ++p) {
    if (d.provider_names()[p] == "NTT") {
      EXPECT_EQ(d.sites_of_provider(
                    ProviderId{static_cast<ProviderId::underlying_type>(p)})
                    .size(),
                4u);
    }
  }
}

TEST_F(DeploymentTest, ScaledPeerLinksProvisioned) {
  // The test world scales Table 1's 104 peer links by peer_scale (0.3) so
  // the peer-to-AS ratio stays realistic; expect roughly 31, allowing a
  // shortfall where a metro has few candidate ASes nearby.
  const std::size_t provisioned =
      world_->deployment().all_peer_attachments().size();
  EXPECT_GE(provisioned, 18u);
  EXPECT_LE(provisioned, 40u);
}

TEST_F(DeploymentTest, CoLocatedSitesAreDistinguishable) {
  // Table 1 has two Los Angeles / Zayo sites (3 and 8, zero-based 2 and 7).
  const Deployment& d = world_->deployment();
  EXPECT_EQ(d.site(SiteId{2}).metro, "Los Angeles");
  EXPECT_EQ(d.site(SiteId{7}).metro, "Los Angeles");
  const auto& a = d.attachments()[d.transit_attachment(SiteId{2})];
  const auto& b = d.attachments()[d.transit_attachment(SiteId{7})];
  EXPECT_EQ(a.neighbor, b.neighbor);  // same Zayo AS
  EXPECT_NE(d.site(SiteId{2}).where.latitude_deg,
            d.site(SiteId{7}).where.latitude_deg);
}

}  // namespace
}  // namespace anyopt::anycast
