// Markdown hygiene for the repo's documentation set.
//
//  * Every relative link in the top-level *.md files must resolve to an
//    existing file (broken cross-references are how architecture docs
//    rot).
//  * CHANGES.md must carry one "PR N:" entry per PR, in order — the
//    contract the stacked-PR workflow relies on.
//  * README.md must point readers at the architecture overview.
//
// The source tree location is injected by CMake as ANYOPT_SOURCE_DIR.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

fs::path source_dir() { return fs::path{ANYOPT_SOURCE_DIR}; }

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Top-level markdown documents (the checked set; build trees excluded by
/// construction since iteration is non-recursive).
std::vector<fs::path> markdown_files() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(source_dir())) {
    if (entry.is_regular_file() && entry.path().extension() == ".md") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Extracts `[text](target)` link targets outside fenced code blocks.
std::vector<std::string> link_targets(const std::string& markdown) {
  std::vector<std::string> targets;
  bool in_fence = false;
  std::istringstream lines(markdown);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("```", 0) == 0) {
      in_fence = !in_fence;
      continue;
    }
    if (in_fence) continue;
    for (std::size_t at = line.find("]("); at != std::string::npos;
         at = line.find("](", at + 2)) {
      const std::size_t start = at + 2;
      const std::size_t end = line.find(')', start);
      if (end == std::string::npos) break;
      const std::string target = line.substr(start, end - start);
      const bool external = target.find("://") != std::string::npos ||
                            target.rfind("mailto:", 0) == 0;
      const bool anchor_only = !target.empty() && target.front() == '#';
      const bool has_space =
          target.find(' ') != std::string::npos || target.empty();
      if (!external && !anchor_only && !has_space) targets.push_back(target);
    }
  }
  return targets;
}

TEST(DocsTest, TopLevelMarkdownSetIsPresent) {
  const auto files = markdown_files();
  ASSERT_FALSE(files.empty());
  const auto has = [&](const char* name) {
    return std::any_of(files.begin(), files.end(), [&](const fs::path& p) {
      return p.filename() == name;
    });
  };
  EXPECT_TRUE(has("README.md"));
  EXPECT_TRUE(has("ARCHITECTURE.md"));
  EXPECT_TRUE(has("DESIGN.md"));
  EXPECT_TRUE(has("EXPERIMENTS.md"));
  EXPECT_TRUE(has("CHANGES.md"));
}

TEST(DocsTest, RelativeLinksResolve) {
  for (const fs::path& file : markdown_files()) {
    const std::string markdown = read_file(file);
    for (const std::string& raw : link_targets(markdown)) {
      // Strip a trailing #fragment; the file part must exist.
      const std::string target = raw.substr(0, raw.find('#'));
      if (target.empty()) continue;
      const fs::path resolved = file.parent_path() / target;
      EXPECT_TRUE(fs::exists(resolved))
          << file.filename().string() << " links to missing " << raw;
    }
  }
}

TEST(DocsTest, ChangesHasOneOrderedEntryPerPr) {
  const std::string changes = read_file(source_dir() / "CHANGES.md");
  std::istringstream lines(changes);
  std::string line;
  long previous = 0;
  std::size_t entries = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    // Every non-empty line is one PR's record: "PR <number>: <summary>".
    ASSERT_EQ(line.rfind("PR ", 0), 0u) << "unexpected line: " << line;
    std::size_t digits = 3;
    while (digits < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[digits])) != 0) {
      ++digits;
    }
    ASSERT_GT(digits, 3u) << "no PR number in: " << line;
    ASSERT_EQ(line.substr(digits, 2), ": ") << "malformed entry: " << line;
    const long number = std::stol(line.substr(3, digits - 3));
    ASSERT_EQ(number, previous + 1)
        << "PR entries must be contiguous and ordered; after PR " << previous
        << " found PR " << number;
    previous = number;
    ++entries;
    EXPECT_GT(line.size(), digits + 10u)
        << "PR " << number << " entry has no summary";
  }
  EXPECT_GE(entries, 4u);  // PRs 1..4 are in history already
}

TEST(DocsTest, PersistenceIsDocumentedAcrossTheDocSet) {
  // PR 5's store layer must stay discoverable from all three entry
  // points: the README quickstart, the architecture map, and the design
  // rationale (format + invariants).
  const std::string readme = read_file(source_dir() / "README.md");
  EXPECT_NE(readme.find("--store="), std::string::npos)
      << "README.md must document the --store=FILE bench flag";
  EXPECT_NE(readme.find("anyopt_store"), std::string::npos)
      << "README.md must carry the anyopt_store CLI quickstart";

  const std::string architecture = read_file(source_dir() / "ARCHITECTURE.md");
  EXPECT_NE(architecture.find("`store.h`"), std::string::npos)
      << "ARCHITECTURE.md module map must place the result store";
  EXPECT_NE(architecture.find("result store"), std::string::npos)
      << "ARCHITECTURE.md dataflow must show the store layer";

  const std::string design = read_file(source_dir() / "DESIGN.md");
  EXPECT_NE(design.find("## 7. Persistence"), std::string::npos)
      << "DESIGN.md must keep the Persistence section (format contract)";
  EXPECT_NE(design.find("census_key"), std::string::npos)
      << "DESIGN.md Persistence must explain the content-derived keys";
}

TEST(DocsTest, ReadmeLinksTheArchitectureOverview) {
  const std::string readme = read_file(source_dir() / "README.md");
  EXPECT_NE(readme.find("](ARCHITECTURE.md)"), std::string::npos)
      << "README.md must link to ARCHITECTURE.md";
}

TEST(DocsTest, ObservabilityIsDocumentedAcrossTheDocSet) {
  // PR 7's observability layer must stay discoverable from every entry
  // point: the README quickstart, the architecture dataflow, the design
  // rationale, and the change log.
  const std::string readme = read_file(source_dir() / "README.md");
  EXPECT_NE(readme.find("anyopt_bench"), std::string::npos)
      << "README.md must carry the anyopt_bench CLI quickstart";
  EXPECT_NE(readme.find("--resmon"), std::string::npos)
      << "README.md must document the --resmon bench flag";
  EXPECT_NE(readme.find("--provenance-out"), std::string::npos)
      << "README.md must document the --provenance-out bench flag";

  const std::string changes = read_file(source_dir() / "CHANGES.md");
  EXPECT_NE(changes.find("anyopt_bench"), std::string::npos)
      << "CHANGES.md must record the PR that introduced anyopt_bench";

  const std::string architecture = read_file(source_dir() / "ARCHITECTURE.md");
  EXPECT_NE(architecture.find("`resmon.h`"), std::string::npos)
      << "ARCHITECTURE.md module map must place the resource monitor";
  EXPECT_NE(architecture.find("provenance"), std::string::npos)
      << "ARCHITECTURE.md must show the provenance flight log";

  const std::string design = read_file(source_dir() / "DESIGN.md");
  EXPECT_NE(design.find("## 9. Resource telemetry"), std::string::npos)
      << "DESIGN.md must keep the resource telemetry & provenance section";
  EXPECT_NE(design.find("bytes."), std::string::npos)
      << "DESIGN.md must explain the per-subsystem byte gauges";
}

TEST(DocsTest, ServeLayerIsDocumentedAcrossTheDocSet) {
  // The what-if prediction service must stay discoverable from every
  // entry point: the README quickstart + wire protocol, the architecture
  // dataflow with its publication invariant, the design rationale for the
  // lock-free read path, and the experiments table's serve row.
  const std::string readme = read_file(source_dir() / "README.md");
  EXPECT_NE(readme.find("anyoptd"), std::string::npos)
      << "README.md must carry the anyoptd quickstart";
  EXPECT_NE(readme.find("--oneshot"), std::string::npos)
      << "README.md must document anyoptd's --oneshot mode";
  EXPECT_NE(readme.find("\"op\":\"predict\""), std::string::npos)
      << "README.md must show the wire protocol's predict request";

  const std::string architecture = read_file(source_dir() / "ARCHITECTURE.md");
  EXPECT_NE(architecture.find("serve/"), std::string::npos)
      << "ARCHITECTURE.md module map must place the serve layer";
  EXPECT_NE(architecture.find("never observes a partially-loaded snapshot"),
            std::string::npos)
      << "ARCHITECTURE.md must state the snapshot publication invariant";

  const std::string design = read_file(source_dir() / "DESIGN.md");
  EXPECT_NE(design.find("lock-free"), std::string::npos)
      << "DESIGN.md must explain the lock-free snapshot read path";
  EXPECT_NE(design.find("anyoptd"), std::string::npos)
      << "DESIGN.md must cover the anyoptd daemon";

  const std::string experiments = read_file(source_dir() / "EXPERIMENTS.md");
  EXPECT_NE(experiments.find("bench_serve"), std::string::npos)
      << "EXPERIMENTS.md must carry the serve QPS/latency row";
}

TEST(DocsTest, AgilityIsDocumentedAcrossTheDocSet) {
  // PR 10's agility engine must stay discoverable from every entry
  // point: the README mitigate quickstart, the architecture module map +
  // dataflow, the design rationale, and the experiments numbers.
  const std::string readme = read_file(source_dir() / "README.md");
  EXPECT_NE(readme.find("\"op\":\"mitigate\""), std::string::npos)
      << "README.md must show the wire protocol's mitigate request";
  EXPECT_NE(readme.find("bench_agility"), std::string::npos)
      << "README.md must mention the agility bench";

  const std::string architecture = read_file(source_dir() / "ARCHITECTURE.md");
  EXPECT_NE(architecture.find("agility/"), std::string::npos)
      << "ARCHITECTURE.md module map must place the agility layer";
  EXPECT_NE(architecture.find("time-to-mitigate"), std::string::npos)
      << "ARCHITECTURE.md must show the mitigation-search dataflow";

  const std::string design = read_file(source_dir() / "DESIGN.md");
  EXPECT_NE(design.find("The agility engine"), std::string::npos)
      << "DESIGN.md must keep the agility-engine section";
  EXPECT_NE(design.find("time-to-mitigate"), std::string::npos)
      << "DESIGN.md must explain the time-to-mitigate objective";

  const std::string experiments = read_file(source_dir() / "EXPERIMENTS.md");
  EXPECT_NE(experiments.find("bench_agility"), std::string::npos)
      << "EXPERIMENTS.md must carry the agility trajectory row";
  EXPECT_NE(experiments.find("Time-to-mitigate"), std::string::npos)
      << "EXPERIMENTS.md must report the measured time-to-mitigate curve";
}

TEST(DocsTest, AgilityTelemetryCountersAreDocumented) {
  // Every telemetry name the agility engine emits must appear (backticked)
  // in DESIGN.md.  The name list is parsed out of the `kAgilityMetrics`
  // initializer in agility/metrics.h — the single source the engine's
  // pre-resolved handles use — so adding a counter there without a
  // DESIGN.md mention fails this test, not a code review.
  const std::string design = read_file(source_dir() / "DESIGN.md");

  const std::string metrics =
      read_file(source_dir() / "src" / "agility" / "metrics.h");
  const std::size_t list = metrics.find("kAgilityMetrics[]");
  ASSERT_NE(list, std::string::npos)
      << "kAgilityMetrics moved out of agility/metrics.h";
  const std::size_t open = metrics.find('{', list);
  const std::size_t close = metrics.find('}', open);
  ASSERT_NE(close, std::string::npos);
  const std::string init = metrics.substr(open, close - open);

  std::size_t names = 0;
  for (std::size_t quote = init.find('"'); quote != std::string::npos;
       quote = init.find('"', quote + 1)) {
    const std::size_t end = init.find('"', quote + 1);
    ASSERT_NE(end, std::string::npos);
    const std::string name = init.substr(quote + 1, end - quote - 1);
    EXPECT_EQ(name.rfind("agility.", 0), 0u) << "unexpected metric " << name;
    EXPECT_NE(design.find('`' + name + '`'), std::string::npos)
        << "DESIGN.md must document the " << name << " metric";
    ++names;
    quote = end;
  }
  EXPECT_GE(names, 6u) << "kAgilityMetrics parse came up short";
}

TEST(DocsTest, ScalingMemoryModelCoversEveryByteGauge) {
  // The Internet-scale memory model (docs/SCALING.md) must document every
  // per-subsystem byte gauge by name.  The gauge list is parsed out of the
  // `kByteGauges` initializer in netbase/resmon.h — the single source the
  // sampler and the bench-record writer share — so adding a gauge there
  // without a docs/SCALING.md row fails this test, not a code review.
  const fs::path scaling = source_dir() / "docs" / "SCALING.md";
  ASSERT_TRUE(fs::exists(scaling)) << "docs/SCALING.md is missing";
  const std::string model = read_file(scaling);

  const std::string resmon =
      read_file(source_dir() / "src" / "netbase" / "resmon.h");
  const std::size_t list = resmon.find("kByteGauges[]");
  ASSERT_NE(list, std::string::npos) << "kByteGauges moved out of resmon.h";
  const std::size_t open = resmon.find('{', list);
  const std::size_t close = resmon.find('}', open);
  ASSERT_NE(close, std::string::npos);
  const std::string init = resmon.substr(open, close - open);

  std::size_t gauges = 0;
  for (std::size_t quote = init.find('"'); quote != std::string::npos;
       quote = init.find('"', quote + 1)) {
    const std::size_t end = init.find('"', quote + 1);
    ASSERT_NE(end, std::string::npos);
    const std::string gauge = init.substr(quote + 1, end - quote - 1);
    EXPECT_EQ(gauge.rfind("bytes.", 0), 0u) << "unexpected gauge " << gauge;
    EXPECT_NE(model.find('`' + gauge + '`'), std::string::npos)
        << "docs/SCALING.md must document the " << gauge << " gauge";
    ++gauges;
    quote = end;
  }
  EXPECT_GE(gauges, 8u) << "kByteGauges parse came up short";

  // The memory model must be reachable from both top-level entry points.
  EXPECT_NE(read_file(source_dir() / "README.md").find("](docs/SCALING.md)"),
            std::string::npos)
      << "README.md must link docs/SCALING.md";
  EXPECT_NE(
      read_file(source_dir() / "ARCHITECTURE.md").find("](docs/SCALING.md)"),
      std::string::npos)
      << "ARCHITECTURE.md must link docs/SCALING.md";
}

}  // namespace
