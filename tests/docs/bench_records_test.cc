// Perf-record hygiene: every committed bench/records/*.json must be a
// well-formed schema-3 record with exactly the documented field set, and
// the anyopt_bench CLI that consumes them must aggregate, diff and gate
// them correctly — including exiting nonzero when a record regressed.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include <sys/wait.h>

#include "netbase/json.h"

namespace anyopt {
namespace {

std::string records_dir() {
  return std::string(ANYOPT_SOURCE_DIR) + "/bench/records";
}

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string text;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);
  return text;
}

std::vector<std::string> record_paths() {
  std::vector<std::string> paths;
  for (const auto& entry :
       std::filesystem::directory_iterator(records_dir())) {
    if (entry.path().extension() == ".json") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

/// The schema-3 contract: exactly these top-level fields, in any order.
/// Adding a field to write_bench_json without bumping the schema — or
/// committing a stale-schema record — fails here.
const std::set<std::string>& top_level_fields() {
  static const std::set<std::string> fields = {
      "schema",
      "git_commit",
      "dirty",
      "bench",
      "threads",
      "hw_concurrency",
      "wall_s",
      "peak_rss_kb",
      "sim_runs",
      "sim_events",
      "censuses",
      "campaign_experiments",
      "resolve_cache_hits",
      "resolve_cache_misses",
      "resolve_cache_hit_rate",
      "scratch_reuse",
      "store_hits",
      "store_misses",
      "store_bytes_written",
      "overlay_forks",
      "overlay_copied_as",
      "overlay_delta_events",
      "bytes",
  };
  return fields;
}

/// OPTIONAL schema-3 top-level fields: present only in records whose bench
/// exercised the subsystem (consumers treat absence as "not exercised",
/// never as zero — see tools/anyopt_bench).
const std::set<std::string>& optional_top_level_fields() {
  static const std::set<std::string> fields = {"serve", "scale", "agility"};
  return fields;
}

const std::set<std::string>& bytes_fields() {
  static const std::set<std::string> fields = {
      "sim_scratch", "overlay_pages", "resolve_cache", "store_index",
      "pool_queue",
  };
  return fields;
}

/// OPTIONAL bytes.* keys (same rule as the optional top-level fields).
const std::set<std::string>& optional_bytes_fields() {
  static const std::set<std::string> fields = {"snapshot", "rib",
                                               "census_shards"};
  return fields;
}

/// The serve block's exact field set (all required once the block exists).
const std::set<std::string>& serve_fields() {
  static const std::set<std::string> fields = {
      "queries", "qps", "p50_ms", "p95_ms", "p99_ms",
  };
  return fields;
}

/// Each scale-sweep point's exact field set (bench_scale's "scale" block).
const std::set<std::string>& scale_point_fields() {
  static const std::set<std::string> fields = {
      "ases",   "targets",     "reachable", "build_s",
      "census_s", "rss_kb", "peak_rss_kb", "bytes",
  };
  return fields;
}

/// Each attack-sweep point's exact field set (bench_agility's "agility"
/// block): one intensity's verdict, winning playbook and event counts on
/// both simulation paths (the overlay-vs-classic saving the gate defends).
const std::set<std::string>& agility_point_fields() {
  static const std::set<std::string> fields = {
      "intensity",          "slo_violated",      "mitigated",
      "time_to_mitigate_s", "post_mean_rtt_ms",  "steps",
      "playbook",           "sim_events_overlay", "sim_events_classic",
      "candidates",         "pruned",
  };
  return fields;
}

TEST(BenchRecords, AtLeastTheHeadlineBenchesAreCommitted) {
  std::set<std::string> names;
  for (const std::string& path : record_paths()) {
    names.insert(std::filesystem::path(path).filename().string());
  }
  for (const char* required :
       {"BENCH_fig4b.json", "BENCH_parallel_discovery.json",
        "BENCH_resilience.json", "BENCH_serve.json", "BENCH_scale.json",
        "BENCH_agility.json"}) {
    EXPECT_TRUE(names.count(required) == 1) << "missing " << required;
  }
}

TEST(BenchRecords, EveryCommittedRecordIsExactlySchema3) {
  const std::vector<std::string> paths = record_paths();
  ASSERT_FALSE(paths.empty()) << "no committed records in " << records_dir();
  for (const std::string& path : paths) {
    SCOPED_TRACE(path);
    Result<json::Value> doc = json::parse(slurp(path));
    ASSERT_TRUE(doc.ok()) << doc.error().message;
    const json::Value& root = doc.value();
    ASSERT_TRUE(root.is_object());

    // Schema values may only move forward: a committed record older than
    // the writer means someone regenerated half the set and not the rest.
    const json::Value* schema = root.find("schema");
    ASSERT_NE(schema, nullptr) << "missing schema field";
    EXPECT_EQ(schema->as_u64(), 3u)
        << "stale (or future) schema — regenerate every committed record";

    // Exact field census: no unknown fields, every REQUIRED field present
    // (optional sections may be absent, but nothing undocumented slips in).
    std::set<std::string> present;
    for (const auto& [name, value] : root.members) {
      EXPECT_TRUE(present.insert(name).second) << "duplicate field " << name;
      EXPECT_TRUE(top_level_fields().count(name) == 1 ||
                  optional_top_level_fields().count(name) == 1)
          << "unknown field " << name;
    }
    for (const std::string& name : top_level_fields()) {
      EXPECT_TRUE(present.count(name) == 1) << "missing field " << name;
    }

    const json::Value* bytes = root.find("bytes");
    ASSERT_NE(bytes, nullptr);
    ASSERT_TRUE(bytes->is_object());
    std::set<std::string> bytes_present;
    for (const auto& [name, value] : bytes->members) {
      EXPECT_TRUE(value.is_number()) << "bytes." << name;
      EXPECT_TRUE(bytes_present.insert(name).second)
          << "duplicate field bytes." << name;
      EXPECT_TRUE(bytes_fields().count(name) == 1 ||
                  optional_bytes_fields().count(name) == 1)
          << "unknown field bytes." << name;
    }
    for (const std::string& name : bytes_fields()) {
      EXPECT_TRUE(bytes_present.count(name) == 1)
          << "missing field bytes." << name;
    }

    // The scale block, when present, is a mem_budget_mb + points pair and
    // every point carries exactly its documented set.
    if (const json::Value* scale = root.find("scale"); scale != nullptr) {
      ASSERT_TRUE(scale->is_object());
      ASSERT_NE(scale->find("mem_budget_mb"), nullptr);
      const json::Value* points = scale->find("points");
      ASSERT_NE(points, nullptr);
      ASSERT_TRUE(points->is_array());
      EXPECT_FALSE(points->items.empty());
      for (const json::Value& point : points->items) {
        ASSERT_TRUE(point.is_object());
        std::set<std::string> point_present;
        for (const auto& [name, value] : point.members) {
          EXPECT_TRUE(point_present.insert(name).second)
              << "duplicate field scale point " << name;
          EXPECT_TRUE(scale_point_fields().count(name) == 1)
              << "unknown field scale point " << name;
        }
        for (const std::string& name : scale_point_fields()) {
          EXPECT_TRUE(point_present.count(name) == 1)
              << "missing field scale point " << name;
        }
        EXPECT_GT(point.find("ases")->as_u64(), 0u);
        EXPECT_GT(point.find("peak_rss_kb")->as_u64(), 0u);
      }
    }

    // The agility block, when present, is a headroom + points pair and
    // every attack point carries exactly its documented set.
    if (const json::Value* agility = root.find("agility");
        agility != nullptr) {
      ASSERT_TRUE(agility->is_object());
      ASSERT_NE(agility->find("headroom"), nullptr);
      const json::Value* points = agility->find("points");
      ASSERT_NE(points, nullptr);
      ASSERT_TRUE(points->is_array());
      EXPECT_FALSE(points->items.empty());
      for (const json::Value& point : points->items) {
        ASSERT_TRUE(point.is_object());
        std::set<std::string> point_present;
        for (const auto& [name, value] : point.members) {
          EXPECT_TRUE(point_present.insert(name).second)
              << "duplicate field agility point " << name;
          EXPECT_TRUE(agility_point_fields().count(name) == 1)
              << "unknown field agility point " << name;
        }
        for (const std::string& name : agility_point_fields()) {
          EXPECT_TRUE(point_present.count(name) == 1)
              << "missing field agility point " << name;
        }
        EXPECT_GT(point.find("intensity")->number_value, 1.0);
        EXPECT_TRUE(point.find("mitigated")->is_bool());
        EXPECT_TRUE(point.find("playbook")->is_string());
      }
    }

    // The serve block, when present, carries exactly its documented set.
    if (const json::Value* serve = root.find("serve"); serve != nullptr) {
      ASSERT_TRUE(serve->is_object());
      std::set<std::string> serve_present;
      for (const auto& [name, value] : serve->members) {
        EXPECT_TRUE(value.is_number()) << "serve." << name;
        EXPECT_TRUE(serve_present.insert(name).second)
            << "duplicate field serve." << name;
        EXPECT_TRUE(serve_fields().count(name) == 1)
            << "unknown field serve." << name;
      }
      for (const std::string& name : serve_fields()) {
        EXPECT_TRUE(serve_present.count(name) == 1)
            << "missing field serve." << name;
      }
    }

    // Spot-check the values a gate depends on.
    EXPECT_FALSE(root.find("bench")->string_value.empty());
    EXPECT_FALSE(root.find("git_commit")->string_value.empty());
    EXPECT_TRUE(root.find("dirty")->is_bool());
    EXPECT_GT(root.find("wall_s")->number_value, 0.0);
    EXPECT_GT(root.find("peak_rss_kb")->as_u64(), 0u);
    EXPECT_GT(root.find("sim_events")->as_u64(), 0u);
    EXPECT_GT(root.find("threads")->as_u64(), 0u);
  }
}

// ------------------------------------------------------ CLI smoke tests

int run_cli(const std::string& args) {
  const std::string command = std::string(ANYOPT_BENCH_CLI) + " " + args +
                              " > /dev/null 2> /dev/null";
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(BenchCli, TrajectoryReadsTheCommittedRecords) {
  EXPECT_EQ(run_cli("trajectory " + records_dir()), 0);
}

TEST(BenchCli, SelfDiffAndSelfCheckPass) {
  const std::string record = records_dir() + "/BENCH_fig4b.json";
  EXPECT_EQ(run_cli("diff " + record + " " + record), 0);
  EXPECT_EQ(run_cli("check " + record + " " + record), 0);
}

TEST(BenchCli, UsageErrorsExitTwo) {
  EXPECT_EQ(run_cli(""), 2);
  EXPECT_EQ(run_cli("frobnicate"), 2);
  EXPECT_EQ(run_cli("check only-one-arg.json"), 2);
  EXPECT_EQ(run_cli("check missing_a.json missing_b.json"), 2);
  EXPECT_EQ(run_cli("--no-such-flag trajectory"), 2);
}

/// Writes a copy of `source` with one numeric top-level field scaled.
std::string write_scaled_copy(const std::string& source,
                              const std::string& field, double factor) {
  Result<json::Value> doc = json::parse(slurp(source));
  EXPECT_TRUE(doc.ok());
  const std::string path = ::testing::TempDir() + "anyopt_bench_records_" +
                           field + "_scaled.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  EXPECT_NE(f, nullptr);
  std::fprintf(f, "{\n");
  bool first = true;
  for (const auto& [name, value] : doc.value().members) {
    if (!first) std::fprintf(f, ",\n");
    first = false;
    if (name == field) {
      std::fprintf(f, "  \"%s\": %.3f", name.c_str(),
                   value.number_value * factor);
    } else if (value.is_number()) {
      std::fprintf(f, "  \"%s\": %.4f", name.c_str(), value.number_value);
    } else if (value.is_string()) {
      std::fprintf(f, "  \"%s\": \"%s\"", name.c_str(),
                   value.string_value.c_str());
    } else if (value.is_bool()) {
      std::fprintf(f, "  \"%s\": %s", name.c_str(),
                   value.bool_value ? "true" : "false");
    } else if (value.is_object()) {
      std::fprintf(f, "  \"%s\": {", name.c_str());
      bool inner_first = true;
      for (const auto& [inner_name, inner] : value.members) {
        std::fprintf(f, "%s\"%s\": %.0f", inner_first ? "" : ", ",
                     inner_name.c_str(), inner.number_value);
        inner_first = false;
      }
      std::fprintf(f, "}");
    }
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  return path;
}

TEST(BenchCli, CheckFailsOnASlowedRun) {
  // The deliberately-slowed fixture: a run 2x slower than the committed
  // record must trip the gate (default wall tolerance is 15%)...
  const std::string committed = records_dir() + "/BENCH_fig4b.json";
  const std::string slowed = write_scaled_copy(committed, "wall_s", 2.0);
  EXPECT_EQ(run_cli("check " + slowed + " " + committed), 1);
  // ...and the gate is asymmetric: the same record as COMMITTED with the
  // slowed run as the baseline is an improvement, not a regression.
  EXPECT_EQ(run_cli("check " + committed + " " + slowed), 0);
  // A wide explicit tolerance waves the slowed run through.
  EXPECT_EQ(run_cli("--wall-tol=1.5 check " + slowed + " " + committed), 0);
  std::remove(slowed.c_str());
}

TEST(BenchRecords, TheServeRecordCarriesTheServeBlock) {
  // BENCH_serve.json is the serve layer's perf baseline: it must carry
  // the optional serve block (QPS + latency percentiles) and the
  // bytes.snapshot high-water mark — a serve record without them gates
  // nothing.
  Result<json::Value> doc =
      json::parse(slurp(records_dir() + "/BENCH_serve.json"));
  ASSERT_TRUE(doc.ok()) << doc.error().message;
  const json::Value* serve = doc.value().find("serve");
  ASSERT_NE(serve, nullptr) << "BENCH_serve.json has no serve block";
  EXPECT_GT(serve->find("qps")->number_value, 0.0);
  EXPECT_GT(serve->find("queries")->number_value, 0.0);
  EXPECT_GT(serve->find("p99_ms")->number_value,
            serve->find("p50_ms")->number_value * 0.999);
  const json::Value* bytes = doc.value().find("bytes");
  ASSERT_NE(bytes, nullptr);
  ASSERT_NE(bytes->find("snapshot"), nullptr);
  EXPECT_GT(bytes->find("snapshot")->number_value, 0.0);
}

TEST(BenchCli, CheckFailsOnEventGrowthAndRespectsBudget) {
  const std::string committed = records_dir() + "/BENCH_fig4b.json";
  const std::string grown = write_scaled_copy(committed, "sim_events", 1.01);
  // Event counts are deterministic: the default budget is exact.
  EXPECT_EQ(run_cli("check " + grown + " " + committed), 1);
  // An explicit budget covering the growth passes.
  EXPECT_EQ(run_cli("--events-budget=100000000 check " + grown + " " +
                    committed),
            0);
  // Symmetric diff flags the difference in either direction.
  EXPECT_EQ(run_cli("diff " + committed + " " + grown), 1);
  std::remove(grown.c_str());
}

/// Writes a literal JSON fixture under the test temp dir.
std::string write_fixture(const std::string& name, const std::string& body) {
  const std::string path =
      ::testing::TempDir() + "anyopt_bench_fixture_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  EXPECT_NE(f, nullptr);
  std::fputs(body.c_str(), f);
  std::fclose(f);
  return path;
}

TEST(BenchCli, MixedSchemaComparisonSkipsAbsentFieldsInsteadOfJudgingZero) {
  // The latent bug this pins down: a pre-schema-3 record has no
  // peak_rss_kb, which the tool used to read as 0 — and 0 vs a real
  // footprint always "regressed".  Absent fields on either side must be
  // skipped as not-comparable, so this mixed pair passes both ways.
  const std::string committed = records_dir() + "/BENCH_fig4b.json";
  const std::string old = write_fixture(
      "schema2",
      "{\"schema\": 2, \"git\": \"abc1234\", \"bench\": \"fig4b\","
      " \"threads\": 1, \"wall_s\": 0.9, \"sim_events\": 168221}\n");
  EXPECT_EQ(run_cli("--wall-tol=9 --events-budget=999999999 check " + old +
                    " " + committed),
            0);
  EXPECT_EQ(run_cli("--wall-tol=9 --events-budget=999999999 check " +
                    committed + " " + old),
            0);
  EXPECT_EQ(run_cli("--wall-tol=9 --events-budget=999999999 diff " + old +
                    " " + committed),
            0);
  std::remove(old.c_str());
}

TEST(BenchCli, Schema3RecordsMissingBytesKeysHardFail) {
  // A record CLAIMING schema 3 without its required bytes.* keys is
  // malformed, not comparable: diff and check must refuse it (exit 2)
  // instead of silently reading the holes as zero.
  const std::string committed = records_dir() + "/BENCH_fig4b.json";
  const std::string no_bytes = write_fixture(
      "schema3_no_bytes",
      "{\"schema\": 3, \"git_commit\": \"abc1234\", \"bench\": \"fig4b\","
      " \"threads\": 1, \"wall_s\": 0.9, \"peak_rss_kb\": 45000,"
      " \"sim_events\": 168221}\n");
  EXPECT_EQ(run_cli("check " + no_bytes + " " + committed), 2);
  EXPECT_EQ(run_cli("diff " + no_bytes + " " + committed), 2);
  const std::string partial_bytes = write_fixture(
      "schema3_partial_bytes",
      "{\"schema\": 3, \"git_commit\": \"abc1234\", \"bench\": \"fig4b\","
      " \"threads\": 1, \"wall_s\": 0.9, \"peak_rss_kb\": 45000,"
      " \"sim_events\": 168221,"
      " \"bytes\": {\"sim_scratch\": 100, \"overlay_pages\": 5}}\n");
  EXPECT_EQ(run_cli("check " + partial_bytes + " " + committed), 2);
  std::remove(no_bytes.c_str());
  std::remove(partial_bytes.c_str());
}

TEST(BenchCli, ServeQpsGateIsAsymmetricAndTunable) {
  const auto serve_record = [](double qps) {
    return "{\"schema\": 3, \"git_commit\": \"abc\", \"bench\": \"serve\","
           " \"threads\": 4, \"wall_s\": 0.5, \"peak_rss_kb\": 40000,"
           " \"sim_events\": 1000,"
           " \"bytes\": {\"sim_scratch\": 0, \"overlay_pages\": 0,"
           " \"resolve_cache\": 0, \"store_index\": 0, \"pool_queue\": 0,"
           " \"snapshot\": 130000},"
           " \"serve\": {\"queries\": 400, \"qps\": " +
           std::to_string(qps) +
           ", \"p50_ms\": 0.02, \"p95_ms\": 0.05, \"p99_ms\": 0.08}}\n";
  };
  const std::string baseline = write_fixture("serve_base", serve_record(10000));
  const std::string slower = write_fixture("serve_slow", serve_record(7000));
  // A 30% QPS drop trips the default 15% gate; the same pair reversed is
  // an improvement (asymmetric); a wide tolerance waves it through.
  EXPECT_EQ(run_cli("check " + slower + " " + baseline), 1);
  EXPECT_EQ(run_cli("check " + baseline + " " + slower), 0);
  EXPECT_EQ(run_cli("--qps-tol=0.5 check " + slower + " " + baseline), 0);
  // diff flags the move in both directions.
  EXPECT_EQ(run_cli("diff " + baseline + " " + slower), 1);
  // A record WITHOUT the serve block against one with it: not comparable,
  // skipped, no failure.
  const std::string serveless = write_fixture(
      "serve_none",
      "{\"schema\": 3, \"git_commit\": \"abc\", \"bench\": \"serve\","
      " \"threads\": 4, \"wall_s\": 0.5, \"peak_rss_kb\": 40000,"
      " \"sim_events\": 1000,"
      " \"bytes\": {\"sim_scratch\": 0, \"overlay_pages\": 0,"
      " \"resolve_cache\": 0, \"store_index\": 0, \"pool_queue\": 0}}\n");
  EXPECT_EQ(run_cli("check " + serveless + " " + baseline), 0);
  EXPECT_EQ(run_cli("check " + baseline + " " + serveless), 0);
  std::remove(baseline.c_str());
  std::remove(slower.c_str());
  std::remove(serveless.c_str());
}

TEST(BenchRecords, TheScaleRecordSweepsToInternetScale) {
  // BENCH_scale.json is the capacity baseline (ROADMAP item 2): it must
  // carry the scale block, and the sweep must reach the ~75k-AS point the
  // tentpole targets — a sweep stopping at paper scale gates nothing.
  Result<json::Value> doc =
      json::parse(slurp(records_dir() + "/BENCH_scale.json"));
  ASSERT_TRUE(doc.ok()) << doc.error().message;
  const json::Value* scale = doc.value().find("scale");
  ASSERT_NE(scale, nullptr) << "BENCH_scale.json has no scale block";
  const json::Value* points = scale->find("points");
  ASSERT_NE(points, nullptr);
  std::uint64_t largest = 0;
  for (const json::Value& point : points->items) {
    largest = std::max(largest, point.find("ases")->as_u64());
  }
  EXPECT_GE(largest, 70000u) << "sweep never reached Internet scale";
  const json::Value* bytes = doc.value().find("bytes");
  ASSERT_NE(bytes, nullptr);
  ASSERT_NE(bytes->find("rib"), nullptr) << "no SoA RIB high-water mark";
  ASSERT_NE(bytes->find("census_shards"), nullptr);
  EXPECT_GT(bytes->find("rib")->number_value, 0.0);
}

TEST(BenchCli, ScaleSweepPointsGatePeakRssPerSize) {
  const auto scale_record = [](long long rss75k) {
    return "{\"schema\": 3, \"git_commit\": \"abc\", \"bench\": \"scale\","
           " \"threads\": 1, \"wall_s\": 30.0, \"peak_rss_kb\": 500000,"
           " \"sim_events\": 5000,"
           " \"bytes\": {\"sim_scratch\": 100, \"overlay_pages\": 0,"
           " \"resolve_cache\": 0, \"store_index\": 0, \"pool_queue\": 0,"
           " \"rib\": 4000000, \"census_shards\": 200000},"
           " \"scale\": {\"mem_budget_mb\": 4096, \"points\": ["
           "{\"ases\": 5000, \"targets\": 14021, \"reachable\": 14021,"
           " \"build_s\": 0.1, \"census_s\": 0.1, \"rss_kb\": 30000,"
           " \"peak_rss_kb\": 30000, \"bytes\": {\"rib\": 900000,"
           " \"census_shards\": 100000, \"sim_scratch\": 5000000}},"
           "{\"ases\": 75000, \"targets\": 210333, \"reachable\": 210333,"
           " \"build_s\": 2.0, \"census_s\": 20.0, \"rss_kb\": 400000,"
           " \"peak_rss_kb\": " +
           std::to_string(rss75k) +
           ", \"bytes\": {\"rib\": 4000000,"
           " \"census_shards\": 200000, \"sim_scratch\": 70000000}}]}}\n";
  };
  // The headline peak_rss_kb is identical in both fixtures; ONLY the 75k
  // point doubled — so a failure here proves the per-size gate judges the
  // sweep itself, not just the headline field.
  const std::string baseline = write_fixture("scale_base", scale_record(500000));
  const std::string bloated = write_fixture("scale_bloat", scale_record(1100000));
  EXPECT_EQ(run_cli("check " + bloated + " " + baseline), 1);
  EXPECT_EQ(run_cli("check " + baseline + " " + bloated), 0);  // improvement
  // A budget generous enough to cover the doubling waves it through.
  EXPECT_EQ(run_cli("--rss-budget-kb=999999999 check " + bloated + " " +
                    baseline),
            0);
  // diff flags the move symmetrically.
  EXPECT_EQ(run_cli("diff " + baseline + " " + bloated), 1);
  // A scale-less record vs a sweep record: skipped, never judged as zero.
  const std::string plain = write_fixture(
      "scale_none",
      "{\"schema\": 3, \"git_commit\": \"abc\", \"bench\": \"scale\","
      " \"threads\": 1, \"wall_s\": 30.0, \"peak_rss_kb\": 500000,"
      " \"sim_events\": 5000,"
      " \"bytes\": {\"sim_scratch\": 100, \"overlay_pages\": 0,"
      " \"resolve_cache\": 0, \"store_index\": 0, \"pool_queue\": 0}}\n");
  EXPECT_EQ(run_cli("check " + plain + " " + baseline), 0);
  EXPECT_EQ(run_cli("check " + baseline + " " + plain), 0);
  std::remove(baseline.c_str());
  std::remove(bloated.c_str());
  std::remove(plain.c_str());
}

TEST(BenchRecords, TheAgilityRecordProvesMitigationAndOverlaySavings) {
  // BENCH_agility.json is the mitigation baseline: for at least three
  // attack intensities the search must have FOUND a playbook that restores
  // the SLO, and the overlay path must have done it with measurably fewer
  // simulated events than the classic full re-convergence — otherwise the
  // agility gate defends nothing.
  Result<json::Value> doc =
      json::parse(slurp(records_dir() + "/BENCH_agility.json"));
  ASSERT_TRUE(doc.ok()) << doc.error().message;
  const json::Value* agility = doc.value().find("agility");
  ASSERT_NE(agility, nullptr) << "BENCH_agility.json has no agility block";
  const json::Value* points = agility->find("points");
  ASSERT_NE(points, nullptr);
  EXPECT_GE(points->items.size(), 3u);
  for (const json::Value& point : points->items) {
    SCOPED_TRACE(point.find("intensity")->number_value);
    // Every committed point is a real attack (SLO violated) that the
    // search mitigated in finite time with a non-empty playbook.
    EXPECT_TRUE(point.find("slo_violated")->bool_value);
    EXPECT_TRUE(point.find("mitigated")->bool_value);
    EXPECT_GT(point.find("time_to_mitigate_s")->number_value, 0.0);
    EXPECT_GT(point.find("steps")->as_u64(), 0u);
    EXPECT_NE(point.find("playbook")->string_value, "hold");
    EXPECT_GT(point.find("sim_events_overlay")->as_u64(), 0u);
    EXPECT_LT(point.find("sim_events_overlay")->as_u64(),
              point.find("sim_events_classic")->as_u64());
  }
}

TEST(BenchCli, AgilityGateIsAsymmetricPerIntensity) {
  const auto agility_record = [](const char* mitigated8, double ttm4,
                                 long long overlay_events2) {
    return "{\"schema\": 3, \"git_commit\": \"abc\", \"bench\": \"agility\","
           " \"threads\": 1, \"wall_s\": 9.0, \"peak_rss_kb\": 400000,"
           " \"sim_events\": 900000,"
           " \"bytes\": {\"sim_scratch\": 100, \"overlay_pages\": 50,"
           " \"resolve_cache\": 0, \"store_index\": 0, \"pool_queue\": 0},"
           " \"agility\": {\"headroom\": 0.4, \"points\": ["
           "{\"intensity\": 2, \"slo_violated\": true, \"mitigated\": true,"
           " \"time_to_mitigate_s\": 35, \"post_mean_rtt_ms\": 31.5,"
           " \"steps\": 1, \"playbook\": \"withdraw 3\","
           " \"sim_events_overlay\": " +
           std::to_string(overlay_events2) +
           ", \"sim_events_classic\": 90000, \"candidates\": 12,"
           " \"pruned\": 4},"
           "{\"intensity\": 4, \"slo_violated\": true, \"mitigated\": true,"
           " \"time_to_mitigate_s\": " +
           std::to_string(ttm4) +
           ", \"post_mean_rtt_ms\": 33.0, \"steps\": 2,"
           " \"playbook\": \"prepend 3x2 > withdraw 3\","
           " \"sim_events_overlay\": 21000, \"sim_events_classic\": 180000,"
           " \"candidates\": 40, \"pruned\": 11},"
           "{\"intensity\": 8, \"slo_violated\": true, \"mitigated\": " +
           std::string(mitigated8) +
           ", \"time_to_mitigate_s\": 65, \"post_mean_rtt_ms\": 35.0,"
           " \"steps\": 2, \"playbook\": \"withdraw 3 > withdraw 5\","
           " \"sim_events_overlay\": 30000, \"sim_events_classic\": 260000,"
           " \"candidates\": 40, \"pruned\": 9}]}}\n";
  };
  const std::string committed =
      write_fixture("agility_base", agility_record("true", 50, 10000));
  // Losing a mitigation at intensity 8 is a regression no tolerance hides.
  const std::string lost =
      write_fixture("agility_lost", agility_record("false", 50, 10000));
  EXPECT_EQ(run_cli("check " + lost + " " + committed), 1);
  EXPECT_EQ(run_cli("--ttm-tol=99 --events-budget=999999999 check " + lost +
                    " " + committed),
            1);
  // ...but the gate is asymmetric: gaining one is an improvement.
  EXPECT_EQ(run_cli("check " + committed + " " + lost), 0);
  // A slower mitigation at intensity 4 trips the exact default ttm gate;
  // --ttm-tol widens it; faster passes untouched.
  const std::string slower =
      write_fixture("agility_slow", agility_record("true", 80, 10000));
  EXPECT_EQ(run_cli("check " + slower + " " + committed), 1);
  EXPECT_EQ(run_cli("--ttm-tol=0.7 check " + slower + " " + committed), 0);
  EXPECT_EQ(run_cli("check " + committed + " " + slower), 0);
  // Overlay event growth at intensity 2 trips the events budget (default
  // exact); a budget covering it passes; shrinkage always passes.
  const std::string grown =
      write_fixture("agility_grown", agility_record("true", 50, 15000));
  EXPECT_EQ(run_cli("check " + grown + " " + committed), 1);
  EXPECT_EQ(run_cli("--events-budget=6000 check " + grown + " " + committed),
            0);
  EXPECT_EQ(run_cli("check " + committed + " " + grown), 0);
  // diff flags ttm and event moves symmetrically.
  EXPECT_EQ(run_cli("diff " + committed + " " + slower), 1);
  EXPECT_EQ(run_cli("diff " + committed + " " + grown), 1);
  // An agility-less record vs a sweep record: skipped, never judged zero.
  const std::string plain = write_fixture(
      "agility_none",
      "{\"schema\": 3, \"git_commit\": \"abc\", \"bench\": \"agility\","
      " \"threads\": 1, \"wall_s\": 9.0, \"peak_rss_kb\": 400000,"
      " \"sim_events\": 900000,"
      " \"bytes\": {\"sim_scratch\": 100, \"overlay_pages\": 50,"
      " \"resolve_cache\": 0, \"store_index\": 0, \"pool_queue\": 0}}\n");
  EXPECT_EQ(run_cli("check " + plain + " " + committed), 0);
  EXPECT_EQ(run_cli("check " + committed + " " + plain), 0);
  std::remove(committed.c_str());
  std::remove(lost.c_str());
  std::remove(slower.c_str());
  std::remove(grown.c_str());
  std::remove(plain.c_str());
}

}  // namespace
}  // namespace anyopt
