// Cross-module integration invariants: properties that must hold across
// the topology -> BGP -> measurement -> prediction chain as a whole.

#include <gtest/gtest.h>

#include "core/campaign.h"
#include "topo/serialize.h"
#include "support/core_fixture.h"

namespace anyopt {
namespace {

using anyopt::testing::default_env;

TEST(Integration, CensusMatchesRawResolution) {
  // The orchestrator's catchment census must agree with walking the data
  // plane directly (probe noise only affects RTT values, not catchments,
  // except for full probe loss).
  auto& env = default_env();
  const auto cfg = anycast::AnycastConfig::all_sites(env.world->deployment());
  const measure::Census census = env.orchestrator->measure(cfg, 0x1D);
  const auto schedule = cfg.schedule(env.world->deployment());
  const bgp::RoutingState state = env.world->simulator().run(schedule, 0x1D);
  std::size_t mismatches = 0;
  std::size_t compared = 0;
  for (std::uint32_t t = 0; t < env.world->targets().size(); ++t) {
    const auto& target = env.world->targets().target(TargetId{t});
    const bgp::ResolvedPath path = state.resolve(target.as, target.where, t);
    if (!census.site_of_target[t].valid() || !path.reachable) continue;
    ++compared;
    mismatches += census.site_of_target[t] != path.site;
  }
  ASSERT_GT(compared, 0u);
  EXPECT_EQ(mismatches, 0u);
}

TEST(Integration, ExplainOrderDependenceMatchesDiscoveryRate) {
  // Two independent views of §4.2's phenomenon must agree in magnitude:
  // the fraction of clients whose deployed route needed the arrival-order
  // step (explain()) and the fraction of order-dependent pairwise
  // preferences (discovery classification).
  auto& env = default_env();
  const auto cfg = anycast::AnycastConfig::all_sites(env.world->deployment());
  const auto schedule = cfg.schedule(env.world->deployment());
  const bgp::RoutingState state = env.world->simulator().run(schedule, 0x2E);
  std::size_t order_dependent = 0;
  std::size_t reachable = 0;
  for (std::uint32_t t = 0; t < env.world->targets().size(); ++t) {
    const auto& target = env.world->targets().target(TargetId{t});
    const bgp::Explanation why = state.explain(target.as, target.where, t);
    if (!why.reachable) continue;
    ++reachable;
    order_dependent += why.order_dependent();
  }
  const double explain_rate =
      static_cast<double>(order_dependent) / static_cast<double>(reachable);

  const core::PairwiseStats stats =
      core::tabulate(env.pipeline->discover().provider_prefs);
  const double od_rate =
      static_cast<double>(stats.order_dependent) /
      static_cast<double>(stats.strict + stats.order_dependent +
                          stats.inconsistent + stats.unknown);
  // Same phenomenon, different denominators: require the same ballpark.
  EXPECT_GT(explain_rate, od_rate / 4);
  EXPECT_LT(explain_rate, od_rate * 6 + 0.05);
}

TEST(Integration, PredictorAgreesWithExplainedSites) {
  // For targets the predictor claims to predict, the explanation of the
  // deployed state should land on the same site almost always.
  auto& env = default_env();
  anycast::AnycastConfig cfg;
  cfg.announce_order = {SiteId{1}, SiteId{4}, SiteId{7}, SiteId{12}};
  const core::Prediction prediction = env.pipeline->predict(cfg);
  const auto schedule = cfg.schedule(env.world->deployment());
  const bgp::RoutingState state = env.world->simulator().run(schedule, 0x3F);
  std::size_t agree = 0;
  std::size_t compared = 0;
  for (std::uint32_t t = 0; t < env.world->targets().size(); ++t) {
    if (!prediction.site_of_target[t].valid()) continue;
    const auto& target = env.world->targets().target(TargetId{t});
    const bgp::Explanation why = state.explain(target.as, target.where, t);
    if (!why.reachable) continue;
    ++compared;
    agree += why.site == prediction.site_of_target[t];
  }
  ASSERT_GT(compared, 0u);
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(compared),
            0.93);
}

TEST(Integration, WorldIsFullyDeterministic) {
  // Two worlds from the same seed must produce byte-identical campaigns.
  auto world_a =
      anycast::World::create(anycast::WorldParams::test_scale(1234));
  auto world_b =
      anycast::World::create(anycast::WorldParams::test_scale(1234));
  measure::Orchestrator orch_a(*world_a);
  measure::Orchestrator orch_b(*world_b);
  core::AnyOptPipeline pipe_a(orch_a);
  core::AnyOptPipeline pipe_b(orch_b);
  core::Campaign a{pipe_a.discover(), pipe_a.measure_rtts()};
  core::Campaign b{pipe_b.discover(), pipe_b.measure_rtts()};
  EXPECT_EQ(core::save_campaign(a), core::save_campaign(b));
}

TEST(Integration, DifferentSeedsProduceDifferentWorlds) {
  auto world_a =
      anycast::World::create(anycast::WorldParams::test_scale(1));
  auto world_b =
      anycast::World::create(anycast::WorldParams::test_scale(2));
  EXPECT_NE(topo::save_internet(world_a->internet()),
            topo::save_internet(world_b->internet()));
}

TEST(Integration, SplpoOptimumMatchesOptimizerOnFixedOrder) {
  // Solving the Appendix-B SPLPO instance built from the campaign must
  // agree with the optimizer's per-size scan when both use the same
  // (site-id) announcement order and the same client population: the
  // SPLPO exhaustive optimum can never be worse.
  auto& env = default_env();
  const auto order = anycast::AnycastConfig::all_sites(env.world->deployment());
  const core::SplpoInstance inst = env.pipeline->splpo_instance(order);
  core::ExhaustiveOptions opts;
  opts.min_open = 4;
  opts.max_open = 4;
  const core::SplpoSolution exact = core::solve_exhaustive(inst, opts);
  ASSERT_TRUE(exact.feasible);
  // Evaluate the optimizer's 4-site winner on the SPLPO instance.
  core::OptimizerOptions oopts;
  oopts.time_budget_s = 20;
  const core::SearchOutcome search = env.pipeline->optimize(oopts);
  std::vector<std::uint32_t> open;
  for (const SiteId s : search.best_per_size[4].config.announce_order) {
    open.push_back(s.value());
  }
  const core::SplpoSolution via_optimizer =
      core::evaluate_open_set(inst, open);
  EXPECT_LE(exact.total_cost, via_optimizer.total_cost + 1e-6);
}

TEST(Integration, PeerEnablementNeverBreaksTransitReachability) {
  // Turning peers on can only move catchments, never strand a client that
  // the transit-only configuration could serve.
  auto& env = default_env();
  anycast::AnycastConfig base =
      anycast::AnycastConfig::all_sites(env.world->deployment());
  const measure::Census before = env.orchestrator->measure(base, 0x77);
  anycast::AnycastConfig with_peers = base;
  const auto peers = env.world->deployment().all_peer_attachments();
  with_peers.enabled_peers.assign(peers.begin(), peers.end());
  const measure::Census after = env.orchestrator->measure(with_peers, 0x77);
  // Allow a handful of probe-loss differences, nothing systematic.
  EXPECT_GE(after.reachable_count() + 5, before.reachable_count());
}

}  // namespace
}  // namespace anyopt
