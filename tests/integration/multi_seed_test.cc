// Robustness sweep: the reproduction's qualitative claims must hold on
// freshly generated worlds, not just the committed seed.

#include <gtest/gtest.h>

#include "core/anyopt.h"
#include "support/core_fixture.h"

namespace anyopt {
namespace {

class MultiSeedTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    world_ = anycast::World::create(
        anycast::WorldParams::test_scale(GetParam()));
    orchestrator_ = std::make_unique<measure::Orchestrator>(*world_);
    pipeline_ = std::make_unique<core::AnyOptPipeline>(*orchestrator_);
  }
  std::unique_ptr<anycast::World> world_;
  std::unique_ptr<measure::Orchestrator> orchestrator_;
  std::unique_ptr<core::AnyOptPipeline> pipeline_;
};

TEST_P(MultiSeedTest, PredictionAccuracyHoldsAcrossWorlds) {
  Rng rng{GetParam() ^ 0xACC};
  anycast::AnycastConfig cfg;
  std::vector<std::size_t> ids(15);
  for (std::size_t i = 0; i < 15; ++i) ids[i] = i;
  rng.shuffle(ids);
  for (std::size_t i = 0; i < 7; ++i) {
    cfg.announce_order.push_back(
        SiteId{static_cast<SiteId::underlying_type>(ids[i])});
  }
  const core::Prediction prediction = pipeline_->predict(cfg);
  const measure::Census census = orchestrator_->measure(cfg, 0xCAFE);
  EXPECT_GT(prediction.accuracy_against(census), 0.88)
      << "seed " << GetParam();
}

TEST_P(MultiSeedTest, OrderAccountingAlwaysHelpsCoverage) {
  // Total-order coverage with order accounting must beat the naive flat
  // approach on every world (Fig. 4c's qualitative claim).
  core::DiscoveryOptions naive_opts;
  naive_opts.account_order = false;
  const core::Discovery naive(*orchestrator_, naive_opts);
  std::size_t experiments = 0;
  const core::PairwiseTable flat = naive.flat_site_level(&experiments);
  std::vector<std::size_t> items(15);
  std::vector<std::size_t> arrival(15);
  for (std::size_t i = 0; i < 15; ++i) {
    items[i] = i;
    arrival[i] = i;
  }
  const double naive_frac =
      core::fraction_with_total_order(flat, items, arrival);

  const auto all = anycast::AnycastConfig::all_sites(world_->deployment());
  const double two_level = pipeline_->predictor().fraction_ordered(all);
  EXPECT_GT(two_level, naive_frac) << "seed " << GetParam();
}

TEST_P(MultiSeedTest, OptimizerNeverLosesToGreedyOnPredictedScore) {
  core::OptimizerOptions opts;
  opts.time_budget_s = 20;
  opts.order_candidates = 6;
  const core::SearchOutcome out = pipeline_->optimize(opts);
  const core::Optimizer optimizer(pipeline_->predictor(), opts);
  for (const std::size_t k : {6u, 10u}) {
    const auto greedy = core::Optimizer::greedy_unicast(
        pipeline_->predictor().rtts(), k);
    EXPECT_LE(out.best_per_size[k].predicted_mean_rtt,
              optimizer.evaluate(greedy).predicted_mean_rtt + 1e-9)
        << "seed " << GetParam() << " k " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiSeedTest,
                         ::testing::Values(911, 922, 933));

}  // namespace
}  // namespace anyopt
