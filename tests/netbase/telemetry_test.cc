// Telemetry registry semantics, scoped timers, and the trace-event sink —
// including full well-formedness of the exported Chrome trace JSON.

#include "netbase/telemetry.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <limits>
#include <string>

namespace anyopt::telemetry {
namespace {

/// Restores the global switches and wipes the registry around each test so
/// suites can toggle telemetry freely.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::global().reset();
    set_enabled(false);
    set_tracing(false);
  }
  void TearDown() override {
    set_enabled(false);
    set_tracing(false);
    Registry::global().reset();
  }
};

TEST_F(TelemetryTest, DisabledByDefault) { EXPECT_FALSE(enabled()); }

TEST_F(TelemetryTest, CounterAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(TelemetryTest, GaugeTracksLastAndPeak) {
  Gauge g;
  g.set(5);
  g.set(9);
  g.set(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.max(), 9);
  g.update_max(100);
  EXPECT_EQ(g.value(), 3);  // update_max leaves the last-set value alone
  EXPECT_EQ(g.max(), 100);
  g.update_max(50);
  EXPECT_EQ(g.max(), 100);
}

TEST_F(TelemetryTest, HistogramMoments) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  for (const double v : {1.0, 2.0, 3.0, 4.0}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
}

TEST_F(TelemetryTest, HistogramHandlesNonPositiveValues) {
  Histogram h;
  h.record(0.0);
  h.record(-3.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), -3.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_GE(h.percentile(0.5), h.min());
  EXPECT_LE(h.percentile(0.5), h.max());
}

TEST_F(TelemetryTest, HistogramRejectsNonFiniteSamples) {
  // Regression: a single NaN used to poison sum/mean forever (NaN + x is
  // NaN) and ±inf pinned min/max; a histogram aggregating a whole campaign
  // was unreadable after one bad sample.  Non-finite values are now tallied
  // in non_finite() and otherwise dropped.
  Histogram h;
  for (const double v : {10.0, 20.0, 30.0}) h.record(v);
  h.record(std::numeric_limits<double>::quiet_NaN());
  h.record(std::numeric_limits<double>::infinity());
  h.record(-std::numeric_limits<double>::infinity());

  EXPECT_EQ(h.count(), 3u) << "rejected samples must not inflate the count";
  EXPECT_EQ(h.non_finite(), 3u);
  EXPECT_TRUE(std::isfinite(h.sum()));
  EXPECT_TRUE(std::isfinite(h.mean()));
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_DOUBLE_EQ(h.min(), 10.0);
  EXPECT_DOUBLE_EQ(h.max(), 30.0);
  for (const double p : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_TRUE(std::isfinite(h.percentile(p))) << "p=" << p;
  }
  h.reset();
  EXPECT_EQ(h.non_finite(), 0u) << "reset must clear the rejection tally";
}

TEST_F(TelemetryTest, HistogramPercentilesMonotonicAndInRange) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  double prev = 0;
  for (const double p : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    const double v = h.percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    EXPECT_GE(v, h.min());
    EXPECT_LE(v, h.max());
    prev = v;
  }
  // Bucket resolution is a factor of two: p50 of U[1,1000] is within
  // [256, 1024) around the true median 500.
  EXPECT_GT(h.percentile(0.5), 100.0);
  EXPECT_LT(h.percentile(0.5), 1000.0);
}

TEST_F(TelemetryTest, EmptyHistogramSummaryAndPercentiles) {
  // An empty histogram must render a readable zero row, not NaN/inf: the
  // summary table is diffed between runs, so "no samples" has to be a
  // stable, finite line.
  Histogram h;
  for (const double p : {0.0, 0.5, 0.95, 1.0}) {
    EXPECT_EQ(h.percentile(p), 0.0) << "p=" << p;
  }
  auto& reg = Registry::global();
  reg.histogram("edge.empty");
  // Hidden by default (count == 0), printable on demand.
  EXPECT_EQ(reg.summary().find("edge.empty"), std::string::npos);
  const std::string summary = reg.summary(/*include_empty=*/true);
  EXPECT_NE(summary.find("edge.empty"), std::string::npos);
  EXPECT_EQ(summary.find("nan"), std::string::npos) << summary;
  EXPECT_EQ(summary.find("inf"), std::string::npos) << summary;
}

TEST_F(TelemetryTest, SingleSampleHistogramPercentilesAgree) {
  // With one sample every percentile is that sample's bucket: all equal,
  // and within the log2 bucket's factor-of-two of the recorded value.
  Histogram h;
  h.record(7.0);
  const double p0 = h.percentile(0.0);
  const double p50 = h.percentile(0.5);
  const double p100 = h.percentile(1.0);
  EXPECT_EQ(p0, p50);
  EXPECT_EQ(p50, p100);
  EXPECT_GE(p50, 3.5);
  EXPECT_LE(p50, 14.0);
  EXPECT_DOUBLE_EQ(h.mean(), 7.0);
  EXPECT_DOUBLE_EQ(h.min(), 7.0);
  EXPECT_DOUBLE_EQ(h.max(), 7.0);
}

TEST_F(TelemetryTest, AllNonFiniteHistogramStaysEmpty) {
  // Every sample rejected: the histogram must behave exactly like an empty
  // one (mean 0, percentiles 0) while still reporting the rejection tally —
  // the non_finite counter is evidence, not data.
  Histogram h;
  h.record(std::numeric_limits<double>::quiet_NaN());
  h.record(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.non_finite(), 2u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  // A later good sample is unaffected by the rejected ones.
  h.record(5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  EXPECT_EQ(h.non_finite(), 2u);
}

TEST_F(TelemetryTest, PercentileClampsOutOfRangeAndNaNRank) {
  // The percentile contract (serve publishes these numbers): an empty
  // histogram returns 0.0 for ANY p — including NaN — and a populated one
  // clamps out-of-range p into [0, 1].  NaN p used to flow through
  // std::clamp unchanged (both comparisons false) and then hit an
  // undefined NaN-to-integer rank cast; now it clamps to 0.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Histogram empty;
  for (const double p : {-1.0, 0.0, 0.5, 1.0, 2.0, nan}) {
    EXPECT_EQ(empty.percentile(p), 0.0);
  }
  Histogram h;
  for (int i = 1; i <= 64; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.percentile(-0.5), h.percentile(0.0));
  EXPECT_EQ(h.percentile(7.0), h.percentile(1.0));
  EXPECT_EQ(h.percentile(nan), h.percentile(0.0));
  for (const double p : {-0.5, 7.0, nan}) {
    const double v = h.percentile(p);
    EXPECT_TRUE(std::isfinite(v)) << "p=" << p;
    EXPECT_GE(v, h.min());
    EXPECT_LE(v, h.max());
  }
}

TEST_F(TelemetryTest, SummaryCounterRowsSortedByName) {
  // Registration order must not leak into the summary: rows come out
  // sorted by metric name so two runs' summaries diff line against line.
  auto& reg = Registry::global();
  reg.counter("zz.last").add(1);
  reg.counter("aa.first").add(1);
  reg.counter("mm.middle").add(1);
  const std::string summary = reg.summary();
  const std::size_t a = summary.find("aa.first");
  const std::size_t m = summary.find("mm.middle");
  const std::size_t z = summary.find("zz.last");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, m);
  EXPECT_LT(m, z);
}

TEST_F(TelemetryTest, RegistryReturnsStableHandles) {
  auto& reg = Registry::global();
  Counter& a = reg.counter("test.counter");
  Counter& b = reg.counter("test.counter");
  EXPECT_EQ(&a, &b);
  Counter& c = reg.counter("test.other");
  EXPECT_NE(&a, &c);
  // Same name in a different metric family is a distinct object.
  reg.gauge("test.counter").set(7);
  a.add(3);
  EXPECT_EQ(reg.counter_value("test.counter"), 3u);
}

TEST_F(TelemetryTest, RegistryResetZeroesEverything) {
  auto& reg = Registry::global();
  reg.counter("r.c").add(5);
  reg.gauge("r.g").set(5);
  reg.histogram("r.h").record(5.0);
  set_enabled(true);
  set_tracing(true);
  reg.instant("r.event", "test");
  EXPECT_EQ(reg.trace_event_count(), 1u);
  reg.reset();
  EXPECT_EQ(reg.counter_value("r.c"), 0u);
  EXPECT_EQ(reg.gauge("r.g").value(), 0);
  EXPECT_EQ(reg.histogram("r.h").count(), 0u);
  EXPECT_EQ(reg.trace_event_count(), 0u);
}

TEST_F(TelemetryTest, ScopedTimerRecordsOnlyWhenEnabled) {
  auto& reg = Registry::global();
  Histogram& h = reg.histogram("t.span_ms");
  { const ScopedTimer span("t.span", "test", &h); }
  EXPECT_EQ(h.count(), 0u);  // disabled: no record

  set_enabled(true);
  { const ScopedTimer span("t.span", "test", &h); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.min(), 0.0);
  // Tracing was off: the span must not have reached the event sink.
  EXPECT_EQ(reg.trace_event_count(), 0u);
}

TEST_F(TelemetryTest, ScopedTimerFinishIsIdempotent) {
  set_enabled(true);
  Histogram& h = Registry::global().histogram("t.finish_ms");
  ScopedTimer span("t.span", "test", &h);
  span.finish();
  span.finish();
  EXPECT_EQ(h.count(), 1u);
}

TEST_F(TelemetryTest, SpansReachSinkOnlyWhenTracing) {
  auto& reg = Registry::global();
  set_enabled(true);
  { const ScopedTimer span("t.a", "test"); }
  EXPECT_EQ(reg.trace_event_count(), 0u);
  set_tracing(true);
  { const ScopedTimer span("t.b", "test"); }
  reg.instant("t.marker", "test", make_args("k", 1));
  EXPECT_EQ(reg.trace_event_count(), 2u);
}

TEST_F(TelemetryTest, SummaryListsRecordedMetrics) {
  auto& reg = Registry::global();
  reg.counter("s.hits").add(12);
  reg.gauge("s.depth").set(4);
  reg.histogram("s.lat_ms").record(1.5);
  const std::string summary = reg.summary();
  EXPECT_NE(summary.find("s.hits"), std::string::npos);
  EXPECT_NE(summary.find("12"), std::string::npos);
  EXPECT_NE(summary.find("s.depth"), std::string::npos);
  EXPECT_NE(summary.find("s.lat_ms"), std::string::npos);
  // Untouched metrics are omitted by default.
  reg.counter("s.silent");
  EXPECT_EQ(reg.summary().find("s.silent"), std::string::npos);
  EXPECT_NE(reg.summary(/*include_empty=*/true).find("s.silent"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Chrome trace JSON well-formedness: a small recursive-descent JSON checker
// (no external dependency) run over the real export.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(s_[pos_])) == 0) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(s_[pos_]) < 0x20) {
        return false;  // raw control character
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    for (; *lit != '\0'; ++lit, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *lit) return false;
    }
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }
  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST_F(TelemetryTest, EmptyTraceIsWellFormedJson) {
  const std::string json = Registry::global().chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST_F(TelemetryTest, TraceExportIsWellFormedJson) {
  auto& reg = Registry::global();
  set_enabled(true);
  set_tracing(true);
  { const ScopedTimer span("json.span", "test"); }
  reg.span("json.manual", "test", 10.0, 5.0, make_args("i", 3, "n", 9));
  reg.instant("json.instant", "test");
  const std::string json = reg.chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"i\":3,\"n\":9}"), std::string::npos);
}

TEST_F(TelemetryTest, TraceEscapesHostileNames) {
  auto& reg = Registry::global();
  set_enabled(true);
  set_tracing(true);
  reg.span("quote\" back\\slash \n newline", "cat\"egory", 0.0, 1.0);
  const std::string json = reg.chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
}

TEST_F(TelemetryTest, SinkIsInertWhenDisabled) {
  auto& reg = Registry::global();
  set_tracing(true);  // tracing without telemetry must still be inert
  reg.span("off.span", "test", 0.0, 1.0);
  reg.instant("off.instant", "test");
  EXPECT_EQ(reg.trace_event_count(), 0u);
}

}  // namespace
}  // namespace anyopt::telemetry
