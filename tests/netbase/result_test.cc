#include "netbase/result.h"

#include <gtest/gtest.h>

#include <string>

namespace anyopt {
namespace {

Result<int> parse_positive(int x) {
  if (x <= 0) return Error::invalid("not positive");
  return x;
}

TEST(Result, HoldsValue) {
  const auto r = parse_positive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);
  EXPECT_TRUE(static_cast<bool>(r));
}

TEST(Result, HoldsError) {
  const auto r = parse_positive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Error::Code::kInvalidArgument);
  EXPECT_EQ(r.error().message, "not positive");
}

TEST(Result, ValueOrFallsBack) {
  EXPECT_EQ(parse_positive(-1).value_or(42), 42);
  EXPECT_EQ(parse_positive(7).value_or(42), 7);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r{std::string("hello")};
  const std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
}

TEST(Status, CarriesError) {
  const Status s = Error::state("bad state");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, Error::Code::kState);
}

TEST(Error, FactoryCodes) {
  EXPECT_EQ(Error::not_found("x").code, Error::Code::kNotFound);
  EXPECT_EQ(Error::parse("x").code, Error::Code::kParse);
  EXPECT_EQ(Error::infeasible("x").code, Error::Code::kInfeasible);
  EXPECT_EQ(Error::timeout("x").code, Error::Code::kTimeout);
}

}  // namespace
}  // namespace anyopt
