#include "netbase/strings.h"

#include <gtest/gtest.h>

namespace anyopt::strings {
namespace {

TEST(Split, BasicFields) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, NoDelimiterYieldsWhole) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  a b \t\n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(StartsWith, Basic) {
  EXPECT_TRUE(starts_with("anyopt-internet v1", "anyopt-"));
  EXPECT_FALSE(starts_with("x", "xy"));
  EXPECT_TRUE(starts_with("abc", ""));
}

}  // namespace
}  // namespace anyopt::strings
