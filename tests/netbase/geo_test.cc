#include "netbase/geo.h"

#include <gtest/gtest.h>

namespace anyopt::geo {
namespace {

TEST(GreatCircle, ZeroForSamePoint) {
  const Coordinates p{52.0, 4.0};
  EXPECT_DOUBLE_EQ(great_circle_km(p, p), 0.0);
}

TEST(GreatCircle, Symmetric) {
  const Coordinates a{40.713, -74.006};  // New York
  const Coordinates b{51.507, -0.128};   // London
  EXPECT_DOUBLE_EQ(great_circle_km(a, b), great_circle_km(b, a));
}

TEST(GreatCircle, KnownDistanceNewYorkLondon) {
  const Coordinates nyc{40.713, -74.006};
  const Coordinates lon{51.507, -0.128};
  // True great-circle distance ≈ 5570 km.
  EXPECT_NEAR(great_circle_km(nyc, lon), 5570, 60);
}

TEST(GreatCircle, AntipodalIsHalfCircumference) {
  const Coordinates a{0, 0};
  const Coordinates b{0, 180};
  EXPECT_NEAR(great_circle_km(a, b), 20015, 30);
}

TEST(Latency, ProportionalToDistancePlusHop) {
  const Coordinates a{0, 0};
  const Coordinates b{0, 10};
  LatencyModel model;
  const double d = great_circle_km(a, b);
  EXPECT_NEAR(one_way_latency_ms(a, b, model),
              d * model.path_inflation * model.ms_per_km_one_way +
                  model.per_hop_ms,
              1e-9);
}

TEST(Latency, TransatlanticIsTensOfMs) {
  // Sanity: the model should give realistic magnitudes (one-way NYC-London
  // over fibre is ~28-42 ms).
  const double ms = one_way_latency_ms({40.713, -74.006}, {51.507, -0.128});
  EXPECT_GT(ms, 20);
  EXPECT_LT(ms, 60);
}

TEST(MetroDatabase, ContainsAllTable1Metros) {
  for (const char* name :
       {"Atlanta", "Amsterdam", "Los Angeles", "Singapore", "London",
        "Tokyo", "Osaka", "Miami", "Newark", "Stockholm", "Toronto",
        "Sao Paulo", "Chicago"}) {
    EXPECT_NO_THROW(metro(name)) << name;
  }
}

TEST(MetroDatabase, UnknownMetroThrows) {
  EXPECT_THROW(metro("Atlantis"), std::invalid_argument);
}

TEST(MetroDatabase, HasGlobalSpread) {
  EXPECT_GE(metro_database().size(), 60u);
}

}  // namespace
}  // namespace anyopt::geo
