// FaultPlan / FaultInjector semantics: decisions are pure functions of
// (seed, ordinal, attempt[, target]) — reproducible, order-independent and
// re-rolled per retry attempt — and every window/combination rule holds.

#include "netbase/fault.h"

#include <gtest/gtest.h>

#include <cstddef>

namespace anyopt::fault {
namespace {

TEST(FaultPlan, DefaultConstructedPlanIsEmpty) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlan, AnyKnobMakesThePlanNonEmpty) {
  FaultPlan plan;
  plan.experiment_failure_prob = 0.1;
  EXPECT_FALSE(plan.empty());

  FaultPlan storms;
  storms.loss_storms.push_back({0, 10, 0.5});
  EXPECT_FALSE(storms.empty());

  FaultPlan failures;
  failures.site_failures.push_back({SiteId{0}, 3, kNever});
  EXPECT_FALSE(failures.empty());
}

TEST(FaultInjector, DecisionsAreReproducibleAndOrderIndependent) {
  FaultPlan plan;
  plan.seed = 99;
  plan.experiment_failure_prob = 0.5;
  plan.degraded_round_prob = 0.5;
  const FaultInjector a(plan);
  const FaultInjector b(plan);

  // Query `a` forward and `b` backward: every answer must match — no query
  // may depend on how many queries happened before it.
  for (std::size_t ordinal = 0; ordinal < 200; ++ordinal) {
    const RoundFaults fa = a.round(ordinal, 0);
    const RoundFaults fb = b.round(199 - ordinal, 0);
    const RoundFaults fa_mirror = a.round(199 - ordinal, 0);
    EXPECT_EQ(fb.fail_round, fa_mirror.fail_round) << ordinal;
    EXPECT_EQ(fb.degraded, fa_mirror.degraded) << ordinal;
    (void)fa;
  }
}

TEST(FaultInjector, SeedChangesDecisions) {
  FaultPlan plan;
  plan.experiment_failure_prob = 0.5;
  plan.seed = 1;
  const FaultInjector one(plan);
  plan.seed = 2;
  const FaultInjector two(plan);
  std::size_t differ = 0;
  for (std::size_t ordinal = 0; ordinal < 200; ++ordinal) {
    if (one.round(ordinal, 0).fail_round != two.round(ordinal, 0).fail_round) {
      ++differ;
    }
  }
  EXPECT_GT(differ, 0u);
}

TEST(FaultInjector, FailureProbabilityIsHonoured) {
  FaultPlan plan;
  plan.experiment_failure_prob = 0.3;
  const FaultInjector injector(plan);
  std::size_t failed = 0;
  constexpr std::size_t kRounds = 20000;
  for (std::size_t ordinal = 0; ordinal < kRounds; ++ordinal) {
    if (injector.round(ordinal, 0).fail_round) ++failed;
  }
  const double rate = static_cast<double>(failed) / kRounds;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(FaultInjector, AttemptRerollsTheFailureDecision) {
  // The whole point of retrying: a round lost at attempt 0 has a fresh,
  // independent chance at attempt 1.  With p = 0.5 some ordinal in a small
  // window must fail then succeed (probability of the contrary ~ 2^-N).
  FaultPlan plan;
  plan.experiment_failure_prob = 0.5;
  const FaultInjector injector(plan);
  bool saw_recovery = false;
  for (std::size_t ordinal = 0; ordinal < 64; ++ordinal) {
    if (injector.round(ordinal, 0).fail_round &&
        !injector.round(ordinal, 1).fail_round) {
      saw_recovery = true;
      break;
    }
  }
  EXPECT_TRUE(saw_recovery);
}

TEST(FaultInjector, ZeroProbabilitiesNeverFail) {
  const FaultInjector injector(FaultPlan{});
  for (std::size_t ordinal = 0; ordinal < 100; ++ordinal) {
    const RoundFaults f = injector.round(ordinal, 0);
    EXPECT_FALSE(f.fail_round);
    EXPECT_FALSE(f.degraded);
    EXPECT_EQ(f.extra_loss_rate, 0.0);
  }
}

TEST(FaultInjector, SiteFailureWindowIsHalfOpen) {
  FaultPlan plan;
  plan.site_failures.push_back({SiteId{3}, 5, 9});
  const FaultInjector injector(plan);
  EXPECT_FALSE(injector.site_failed(SiteId{3}, 4));
  EXPECT_TRUE(injector.site_failed(SiteId{3}, 5));   // inclusive start
  EXPECT_TRUE(injector.site_failed(SiteId{3}, 8));
  EXPECT_FALSE(injector.site_failed(SiteId{3}, 9));  // exclusive end
  EXPECT_FALSE(injector.site_failed(SiteId{1}, 6));  // other sites healthy
}

TEST(FaultInjector, SiteFailureDefaultNeverRecovers) {
  FaultPlan plan;
  plan.site_failures.push_back({SiteId{0}, 2, kNever});
  const FaultInjector injector(plan);
  EXPECT_FALSE(injector.site_failed(SiteId{0}, 1));
  EXPECT_TRUE(injector.site_failed(SiteId{0}, 2));
  EXPECT_TRUE(injector.site_failed(SiteId{0}, 1u << 20));
}

TEST(FaultInjector, LossStormsApplyOnlyInsideTheirWindow) {
  FaultPlan plan;
  plan.loss_storms.push_back({10, 20, 0.5});
  const FaultInjector injector(plan);
  EXPECT_EQ(injector.round(9, 0).extra_loss_rate, 0.0);
  EXPECT_EQ(injector.round(10, 0).extra_loss_rate, 0.5);  // inclusive
  EXPECT_EQ(injector.round(20, 0).extra_loss_rate, 0.5);  // inclusive
  EXPECT_EQ(injector.round(21, 0).extra_loss_rate, 0.0);
}

TEST(FaultInjector, OverlappingStormsCombineAsIndependentLosses) {
  FaultPlan plan;
  plan.loss_storms.push_back({0, 10, 0.5});
  plan.loss_storms.push_back({5, 15, 0.2});
  const FaultInjector injector(plan);
  // 1 - (1 - 0.5)(1 - 0.2) = 0.6.
  EXPECT_DOUBLE_EQ(injector.round(7, 0).extra_loss_rate, 0.6);
  EXPECT_DOUBLE_EQ(injector.round(3, 0).extra_loss_rate, 0.5);
  EXPECT_DOUBLE_EQ(injector.round(12, 0).extra_loss_rate, 0.2);
}

TEST(FaultInjector, LostRoundSuppressesDegradation) {
  FaultPlan plan;
  plan.experiment_failure_prob = 1.0;
  plan.degraded_round_prob = 1.0;
  const FaultInjector injector(plan);
  const RoundFaults f = injector.round(0, 0);
  EXPECT_TRUE(f.fail_round);
  EXPECT_FALSE(f.degraded);  // a lost round has nothing left to degrade
}

TEST(FaultInjector, TargetDropsMatchTheConfiguredFraction) {
  FaultPlan plan;
  plan.degraded_round_prob = 1.0;
  plan.degraded_drop_fraction = 0.3;
  const FaultInjector injector(plan);
  std::size_t dropped = 0;
  constexpr std::uint32_t kTargets = 20000;
  for (std::uint32_t t = 0; t < kTargets; ++t) {
    if (injector.target_dropped(0, 0, t)) ++dropped;
  }
  const double rate = static_cast<double>(dropped) / kTargets;
  EXPECT_NEAR(rate, 0.3, 0.02);

  // A different (ordinal, attempt) re-rolls which targets vanish.
  std::size_t differ = 0;
  for (std::uint32_t t = 0; t < 1000; ++t) {
    if (injector.target_dropped(0, 0, t) != injector.target_dropped(1, 0, t)) {
      ++differ;
    }
  }
  EXPECT_GT(differ, 0u);
}

}  // namespace
}  // namespace anyopt::fault
