#include "netbase/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace anyopt {
namespace {

TEST(ThreadPool, RunsEverySubmittedTaskExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 200;
  std::vector<std::atomic<int>> hits(kTasks);
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([&hits, i] { ++hits[i]; }));
  }
  for (auto& f : futures) f.get();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitReturnsTaskResult) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ParallelForCoversRangeInOrderSlots) {
  // Each index writes only its own slot; the result must be the identity
  // permutation regardless of worker scheduling.
  ThreadPool pool(4);
  std::vector<std::size_t> out(500, ~std::size_t{0});
  pool.parallel_for(out.size(), [&](std::size_t i) { out[i] = i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("probe lost"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForRethrowsLowestFailingIndex) {
  ThreadPool pool(4);
  // Indices 3 and 7 fail; the rethrown exception must deterministically be
  // index 3's, and every non-failing index must still have run.
  std::vector<std::atomic<int>> ran(16);
  try {
    pool.parallel_for(16, [&](std::size_t i) {
      if (i == 3 || i == 7) {
        throw std::runtime_error("fail " + std::to_string(i));
      }
      ++ran[i];
    });
    FAIL() << "expected parallel_for to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "fail 3");
  }
  for (std::size_t i = 0; i < ran.size(); ++i) {
    if (i == 3 || i == 7) continue;
    EXPECT_EQ(ran[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ShutdownJoinsWorkersAfterInFlightTasksFinish) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(3);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 24; ++i) {
      futures.push_back(pool.submit([&completed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++completed;
      }));
    }
    for (auto& f : futures) f.get();
    // Destructor runs here: workers must join without deadlock or leak
    // (TSan/ASan builds verify that part).
  }
  EXPECT_EQ(completed.load(), 24);
}

TEST(ThreadPool, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace anyopt
