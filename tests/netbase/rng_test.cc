#include "netbase/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace anyopt {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng parent{42};
  Rng child1 = parent.fork("stream");
  // Forking again with the same label from the same parent state matches.
  Rng child2 = parent.fork("stream");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child1(), child2());
}

TEST(Rng, ForkLabelsSeparateStreams) {
  Rng parent{42};
  Rng a = parent.fork("alpha");
  Rng b = parent.fork("beta");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng{11};
  std::vector<int> histogram(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.below(10)];
  for (const int count : histogram) {
    EXPECT_NEAR(count, kDraws / 10, kDraws / 10 / 5);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{3};
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng{5};
  double sum = 0;
  double sumsq = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sumsq / kDraws, 1.0, 0.03);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng{9};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng{13};
  double sum = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(25.0);
  EXPECT_NEAR(sum / kDraws, 25.0, 1.0);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng{17};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng{21};
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Fnv1a, StableKnownValue) {
  // FNV-1a of empty string is the offset basis.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
}

}  // namespace
}  // namespace anyopt
