#include "netbase/table.h"

#include <gtest/gtest.h>

namespace anyopt {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"site", "rtt"});
  t.add_row({"Atlanta", "12.5"});
  t.add_row({"Tokyo", "140.0"});
  const std::string out = t.render();
  EXPECT_NE(out.find("site"), std::string::npos);
  EXPECT_NE(out.find("Atlanta"), std::string::npos);
  EXPECT_NE(out.find("140.0"), std::string::npos);
}

TEST(TextTable, ColumnsAreAligned) {
  TextTable t({"a", "b"});
  t.add_row({"xxxxxx", "1"});
  t.add_row({"y", "2"});
  const std::string out = t.render();
  // Both '1' and '2' must be at the same column offset.
  const auto line_of = [&](char c) {
    std::size_t pos = out.find(c);
    std::size_t line_start = out.rfind('\n', pos);
    return pos - (line_start == std::string::npos ? 0 : line_start);
  };
  EXPECT_EQ(line_of('1'), line_of('2'));
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(3.0, 0), "3");
}

TEST(TextTable, PctFormatsFraction) {
  EXPECT_EQ(TextTable::pct(0.947, 1), "94.7%");
  EXPECT_EQ(TextTable::pct(1.0, 0), "100%");
}

TEST(TextTable, EmptyTableRendersHeaderOnly) {
  TextTable t({"only"});
  const std::string out = t.render();
  EXPECT_NE(out.find("only"), std::string::npos);
}

}  // namespace
}  // namespace anyopt
