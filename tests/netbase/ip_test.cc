#include "netbase/ip.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace anyopt::net {
namespace {

TEST(Ipv4, ParsesDottedQuad) {
  const auto ip = Ipv4::parse("192.0.2.1");
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ip.value().to_string(), "192.0.2.1");
  EXPECT_EQ(ip.value().octet(0), 192);
  EXPECT_EQ(ip.value().octet(3), 1);
}

TEST(Ipv4, ParsesExtremes) {
  EXPECT_EQ(Ipv4::parse("0.0.0.0").value().bits(), 0u);
  EXPECT_EQ(Ipv4::parse("255.255.255.255").value().bits(), 0xFFFFFFFFu);
}

TEST(Ipv4, RejectsMalformed) {
  for (const char* bad : {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d",
                          "1..2.3", "-1.2.3.4", "1.2.3.4 "}) {
    EXPECT_FALSE(Ipv4::parse(bad).ok()) << bad;
  }
}

TEST(Ipv4, OrderingMatchesNumericValue) {
  EXPECT_LT(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2));
  EXPECT_LT(Ipv4(9, 255, 255, 255), Ipv4(10, 0, 0, 0));
}

TEST(Prefix, NormalizesHostBits) {
  const Prefix p{Ipv4(10, 1, 2, 200), 24};
  EXPECT_EQ(p.to_string(), "10.1.2.0/24");
}

TEST(Prefix, ContainsAddress) {
  const Prefix p = Prefix::parse("198.51.100.0/24").value();
  EXPECT_TRUE(p.contains(Ipv4(198, 51, 100, 7)));
  EXPECT_FALSE(p.contains(Ipv4(198, 51, 101, 7)));
}

TEST(Prefix, ContainsSubPrefix) {
  const Prefix outer = Prefix::parse("10.0.0.0/8").value();
  const Prefix inner = Prefix::parse("10.42.0.0/16").value();
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
}

TEST(Prefix, ZeroLengthContainsEverything) {
  const Prefix all{Ipv4{}, 0};
  EXPECT_TRUE(all.contains(Ipv4(255, 0, 255, 0)));
  EXPECT_EQ(all.size(), std::uint64_t{1} << 32);
}

TEST(Prefix, Slash24Grouping) {
  const Prefix host{Ipv4(100, 64, 9, 77), 32};
  EXPECT_EQ(host.slash24().to_string(), "100.64.9.0/24");
}

TEST(Prefix, RejectsMalformed) {
  for (const char* bad : {"10.0.0.0", "10.0.0.0/33", "10.0.0.0/x", "/24"}) {
    EXPECT_FALSE(Prefix::parse(bad).ok()) << bad;
  }
}

TEST(Prefix, HashDistinguishesLengths) {
  std::unordered_set<Prefix> set;
  set.insert(Prefix::parse("10.0.0.0/8").value());
  set.insert(Prefix::parse("10.0.0.0/16").value());
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace anyopt::net
