#include "netbase/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace anyopt::stats {
namespace {

TEST(Online, EmptyIsZero) {
  Online acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Online, MeanAndVarianceMatchClosedForm) {
  Online acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Online, MergeEqualsSequential) {
  Online all;
  Online left;
  Online right;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10 + i;
    all.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Online, MergeWithEmptyIsIdentity) {
  Online a;
  a.add(3.0);
  Online empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(Quantile, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Quantile, MedianOfEvenSampleInterpolates) {
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Quantile, ExtremesAreMinMax) {
  const std::vector<double> v{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 9.0);
}

TEST(Quantile, EmptySampleIsZero) { EXPECT_EQ(median({}), 0.0); }

TEST(Quantile, MedianFiltersOutliers) {
  // The paper's median-of-7 rationale: one huge outlier must not move it.
  EXPECT_DOUBLE_EQ(median({10, 11, 10, 12, 11, 10, 5000}), 11.0);
}

TEST(Mean, Basic) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.0);
  EXPECT_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Cdf, MonotoneAndEndsAtOne) {
  std::vector<double> sample;
  for (int i = 100; i > 0; --i) sample.push_back(i);
  const auto cdf = empirical_cdf(sample, 20);
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GE(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 100.0);
}

TEST(Cdf, DecimatesToRequestedPoints) {
  std::vector<double> sample(1000, 1.0);
  EXPECT_EQ(empirical_cdf(sample, 25).size(), 25u);
}

TEST(Cdf, SmallSampleKeepsAllPoints) {
  EXPECT_EQ(empirical_cdf({1.0, 2.0}, 50).size(), 2u);
}

TEST(Cdf, FormatContainsSeriesName) {
  const auto cdf = empirical_cdf({1.0, 2.0, 3.0});
  const std::string text = format_cdf(cdf, "rtt_ms", "AnyOpt");
  EXPECT_NE(text.find("AnyOpt"), std::string::npos);
  EXPECT_NE(text.find("rtt_ms"), std::string::npos);
}

}  // namespace
}  // namespace anyopt::stats
