#include "netbase/codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "netbase/rng.h"

namespace anyopt::codec {
namespace {

TEST(Codec, VarintRoundTripsBoundaryValues) {
  const std::uint64_t values[] = {
      0,
      1,
      127,
      128,   // first two-byte value
      16383,
      16384,  // first three-byte value
      0xFFFFFFFFull,
      0x0123456789ABCDEFull,
      std::numeric_limits<std::uint64_t>::max(),
  };
  Writer w;
  for (const std::uint64_t v : values) w.put_varint(v);
  Reader r(w.bytes());
  for (const std::uint64_t v : values) {
    const auto decoded = r.read_varint();
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), v);
  }
  EXPECT_TRUE(r.at_end());
}

TEST(Codec, VarintEncodingLengths) {
  // LEB128: 7 payload bits per byte.
  const auto encoded_size = [](std::uint64_t v) {
    Writer w;
    w.put_varint(v);
    return w.size();
  };
  EXPECT_EQ(encoded_size(0), 1u);
  EXPECT_EQ(encoded_size(127), 1u);
  EXPECT_EQ(encoded_size(128), 2u);
  EXPECT_EQ(encoded_size(16383), 2u);
  EXPECT_EQ(encoded_size(16384), 3u);
  EXPECT_EQ(encoded_size(std::numeric_limits<std::uint64_t>::max()), 10u);
}

TEST(Codec, ZigzagMapsSmallMagnitudesToSmallCodes) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  const std::int64_t values[] = {
      0, 1, -1, 63, -64, 1000, -1000,
      std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max(),
  };
  for (const std::int64_t v : values) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v) << v;
  }
}

TEST(Codec, SvarintAndDoubleRoundTrip) {
  Writer w;
  w.put_svarint(-42);
  w.put_svarint(std::numeric_limits<std::int64_t>::min());
  w.put_double(3.14159265358979);
  w.put_double(-0.0);
  w.put_double(std::numeric_limits<double>::infinity());
  Reader r(w.bytes());
  EXPECT_EQ(r.read_svarint().value(), -42);
  EXPECT_EQ(r.read_svarint().value(),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(r.read_double().value(), 3.14159265358979);
  const double negzero = r.read_double().value();
  EXPECT_EQ(negzero, 0.0);
  EXPECT_TRUE(std::signbit(negzero));  // bit-exact, not just value-equal
  EXPECT_EQ(r.read_double().value(),
            std::numeric_limits<double>::infinity());
  EXPECT_TRUE(r.at_end());
}

TEST(Codec, FixedWidthAndStringRoundTrip) {
  Writer w;
  w.put_u8(0xAB);
  w.put_u32le(0xDEADBEEF);
  w.put_u64le(0x0123456789ABCDEFull);
  w.put_string("hello \xE2\x98\x83");
  w.put_string("");
  Reader r(w.bytes());
  EXPECT_EQ(r.read_u8().value(), 0xAB);
  EXPECT_EQ(r.read_u32le().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64le().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.read_string().value(), "hello \xE2\x98\x83");
  EXPECT_EQ(r.read_string().value(), "");
  EXPECT_TRUE(r.at_end());
}

TEST(Codec, TruncatedReadsErrorWithOffset) {
  Writer w;
  w.put_u32le(7);
  Reader r(w.bytes().subspan(0, 2));
  const auto res = r.read_u32le();
  ASSERT_FALSE(res.ok());
  // The diagnostic names the failing byte offset.
  EXPECT_NE(res.error().message.find("0"), std::string::npos);

  // A varint whose continuation bytes run off the end is truncation too.
  const std::uint8_t dangling[] = {0x80, 0x80};
  Reader r2(std::span<const std::uint8_t>(dangling, 2));
  EXPECT_FALSE(r2.read_varint().ok());
}

TEST(Codec, SectionsSkipUnknownTags) {
  // Forward compatibility: a reader loops over sections and ignores tags
  // it does not know.
  Writer future_body;
  future_body.put_varint(999);
  Writer known_body;
  known_body.put_string("payload");
  Writer out;
  out.put_section(77, future_body);  // tag from a future writer
  out.put_section(2, known_body);

  Reader r(out.bytes());
  std::string decoded;
  while (!r.at_end()) {
    const auto section = r.read_section();
    ASSERT_TRUE(section.ok());
    if (section.value().tag == 2) {
      Reader body(section.value().body);
      decoded = body.read_string().value();
    }
    // Unknown tags fall through: read_section already consumed the body.
  }
  EXPECT_EQ(decoded, "payload");
}

TEST(Codec, SectionWithTruncatedBodyErrors) {
  Writer body;
  body.put_u64le(1);
  Writer out;
  out.put_section(5, body);
  Reader r(out.bytes().subspan(0, out.size() - 3));
  EXPECT_FALSE(r.read_section().ok());
}

TEST(Codec, HeaderRoundTripAndValidation) {
  const auto header = encode_header("TESTMAGC", 3, 0xFEEDFACE12345678ull);
  ASSERT_EQ(header.size(), kHeaderSize);
  const auto decoded = decode_header(header, "TESTMAGC");
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value().version, 3u);
  EXPECT_EQ(decoded.value().app_word, 0xFEEDFACE12345678ull);

  // Wrong magic.
  EXPECT_FALSE(decode_header(header, "WRONGMAG").ok());
  // Truncated header.
  EXPECT_FALSE(
      decode_header(std::span(header).subspan(0, kHeaderSize - 1), "TESTMAGC")
          .ok());
  // Any flipped bit breaks the header CRC.
  for (std::size_t i = 0; i < header.size(); ++i) {
    auto bad = header;
    bad[i] ^= 0x10;
    EXPECT_FALSE(decode_header(bad, "TESTMAGC").ok()) << "byte " << i;
  }
}

TEST(Codec, FrameRoundTrip) {
  Writer payload;
  payload.put_string("record body");
  std::vector<std::uint8_t> file;
  frame_record(7, payload.bytes(), file);
  frame_record(9, {}, file);  // empty payload is legal

  FrameView frame;
  ASSERT_EQ(scan_frame(file, 0, &frame), FrameScan::kOk);
  EXPECT_EQ(frame.kind, 7);
  ASSERT_EQ(frame.payload.size(), payload.size());
  EXPECT_TRUE(std::equal(frame.payload.begin(), frame.payload.end(),
                         payload.bytes().begin()));
  ASSERT_EQ(scan_frame(file, frame.next_offset, &frame), FrameScan::kOk);
  EXPECT_EQ(frame.kind, 9);
  EXPECT_TRUE(frame.payload.empty());
  EXPECT_EQ(frame.next_offset, file.size());
}

TEST(Codec, FrameDistinguishesTornTailFromBadCrc) {
  Writer payload;
  payload.put_u64le(0x1122334455667788ull);
  std::vector<std::uint8_t> file;
  frame_record(1, payload.bytes(), file);

  FrameView frame;
  // Every strict prefix of the frame is a torn tail, never a bad CRC:
  // crash recovery must be able to truncate it away.
  for (std::size_t cut = 1; cut < file.size(); ++cut) {
    const std::span<const std::uint8_t> torn(file.data(), cut);
    EXPECT_EQ(scan_frame(torn, 0, &frame), FrameScan::kTruncated)
        << "cut at " << cut;
  }
  // A flipped bit anywhere in the complete frame — header bytes included —
  // is a bad CRC, never silently wrong data.
  for (std::size_t i = 0; i < file.size(); ++i) {
    auto bad = file;
    bad[i] ^= 0x01;
    const FrameScan scan = scan_frame(bad, 0, &frame);
    // Growing the length field can also turn the frame into a torn tail;
    // either way the frame never scans as kOk.
    EXPECT_NE(scan, FrameScan::kOk) << "byte " << i;
  }
}

TEST(Codec, ReadFrameErrorsCarryTheOffset) {
  Writer payload;
  payload.put_u8(1);
  std::vector<std::uint8_t> file;
  frame_record(1, payload.bytes(), file);
  const std::size_t second = file.size();
  frame_record(2, payload.bytes(), file);
  file[second + 6] ^= 0xFF;  // corrupt the second record's body

  ASSERT_TRUE(read_frame(file, 0).ok());
  const auto bad = read_frame(file, second);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message.find(std::to_string(second)),
            std::string::npos)
      << bad.error().message;
}

TEST(Codec, Crc32cKnownVectorAndChaining) {
  // RFC 3720 test vector: CRC32C of 32 zero bytes.
  const std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
  // Chaining is equivalent to one pass over the concatenation.
  const std::vector<std::uint8_t> data = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::uint32_t whole = crc32c(data);
  const std::uint32_t chained =
      crc32c(std::span(data).subspan(4), crc32c(std::span(data).first(4)));
  EXPECT_EQ(whole, chained);
}

TEST(Codec, RandomizedPayloadRoundTrip) {
  Rng rng(0xC0DEC);
  for (int round = 0; round < 50; ++round) {
    Writer w;
    std::vector<std::uint64_t> uvals;
    std::vector<std::int64_t> svals;
    std::vector<double> dvals;
    for (int i = 0; i < 20; ++i) {
      uvals.push_back(rng());
      svals.push_back(static_cast<std::int64_t>(rng()));
      dvals.push_back(static_cast<double>(rng.uniform_int(-500000, 500000)) /
                      7.0);
      w.put_varint(uvals.back());
      w.put_svarint(svals.back());
      w.put_double(dvals.back());
    }
    std::vector<std::uint8_t> file;
    frame_record(3, w.bytes(), file);
    const auto frame = read_frame(file, 0);
    ASSERT_TRUE(frame.ok());
    Reader r(frame.value().payload);
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(r.read_varint().value(), uvals[i]);
      EXPECT_EQ(r.read_svarint().value(), svals[i]);
      EXPECT_EQ(r.read_double().value(), dvals[i]);
    }
    EXPECT_TRUE(r.at_end());
  }
}

}  // namespace
}  // namespace anyopt::codec
