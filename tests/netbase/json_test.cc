// The minimal JSON reader behind the perf-trajectory toolchain: full value
// grammar, strictness (this parser REJECTS what RFC 8259 rejects — the
// committed records must not drift into "works on our parser" dialect), and
// the byte-offset diagnostics the record-hygiene tests print.

#include "netbase/json.h"

#include <gtest/gtest.h>

#include <string>

namespace anyopt::json {
namespace {

Value parse_ok(std::string_view text) {
  Result<Value> doc = parse(text);
  EXPECT_TRUE(doc.ok()) << (doc.ok() ? "" : doc.error().message);
  return doc.ok() ? std::move(doc).value() : Value{};
}

void expect_rejects(std::string_view text) {
  EXPECT_FALSE(parse(text).ok()) << "accepted: " << text;
}

TEST(Json, ParsesScalars) {
  EXPECT_EQ(parse_ok("null").kind, Value::Kind::kNull);
  EXPECT_TRUE(parse_ok("true").bool_value);
  EXPECT_FALSE(parse_ok("false").bool_value);
  EXPECT_DOUBLE_EQ(parse_ok("42").number_value, 42.0);
  EXPECT_DOUBLE_EQ(parse_ok("-3.25").number_value, -3.25);
  EXPECT_DOUBLE_EQ(parse_ok("1e3").number_value, 1000.0);
  EXPECT_EQ(parse_ok("\"hi\"").string_value, "hi");
}

TEST(Json, ParsesBenchRecordShape) {
  const Value root = parse_ok(
      R"({"schema": 3, "bench": "fig4b", "dirty": false,
          "wall_s": 0.969, "bytes": {"sim_scratch": 252080}})");
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.find("schema")->as_u64(), 3u);
  EXPECT_EQ(root.find("bench")->string_value, "fig4b");
  EXPECT_FALSE(root.find("dirty")->bool_value);
  EXPECT_DOUBLE_EQ(root.find("wall_s")->number_value, 0.969);
  const Value* bytes = root.find("bytes");
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(bytes->find("sim_scratch")->as_u64(), 252080u);
  EXPECT_EQ(root.find("no_such_field"), nullptr);
}

TEST(Json, PreservesMemberOrder) {
  const Value root = parse_ok(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(root.members.size(), 3u);
  EXPECT_EQ(root.members[0].first, "z");
  EXPECT_EQ(root.members[1].first, "a");
  EXPECT_EQ(root.members[2].first, "m");
}

TEST(Json, ParsesArraysAndNesting) {
  const Value root = parse_ok(R"([1, [2, 3], {"k": [true]}])");
  ASSERT_TRUE(root.is_array());
  ASSERT_EQ(root.items.size(), 3u);
  EXPECT_EQ(root.items[1].items[1].as_u64(), 3u);
  EXPECT_TRUE(root.items[2].find("k")->items[0].bool_value);
}

TEST(Json, DecodesEscapes) {
  EXPECT_EQ(parse_ok(R"("a\"b\\c\nd\te")").string_value, "a\"b\\c\nd\te");
  // \u escape, including a surrogate pair (UTF-8 output).
  EXPECT_EQ(parse_ok(R"("\u0041")").string_value, "A");
  EXPECT_EQ(parse_ok(R"("\u00e9")").string_value, "\xc3\xa9");
  EXPECT_EQ(parse_ok(R"("\ud83d\ude00")").string_value, "\xf0\x9f\x98\x80");
}

TEST(Json, As64ClampsAndTruncates) {
  EXPECT_EQ(parse_ok("-5").as_u64(), 0u) << "counters are never negative";
  EXPECT_EQ(parse_ok("3.9").as_u64(), 3u);
  EXPECT_EQ(parse_ok("\"7\"").as_u64(), 0u) << "strings are not numbers";
}

TEST(Json, RejectsMalformedDocuments) {
  expect_rejects("");
  expect_rejects("{");
  expect_rejects("}");
  expect_rejects("{\"a\":}");
  expect_rejects("{\"a\" 1}");
  expect_rejects("[1, 2,]");
  expect_rejects("{\"a\": 1,}");
  expect_rejects("01");        // leading zero
  expect_rejects("+1");        // explicit plus
  expect_rejects("1.");        // bare decimal point
  expect_rejects("nul");       // truncated literal
  expect_rejects("\"open");    // unterminated string
  expect_rejects("\"\\x\"");   // unknown escape
  expect_rejects("\"\t\"");    // raw control character
  expect_rejects("{} trailing");
  expect_rejects("1 2");
}

TEST(Json, RejectsPathologicalNesting) {
  // The parser bounds recursion; a deliberately deep document errors
  // cleanly instead of overflowing the stack.
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  EXPECT_FALSE(parse(deep).ok());
}

TEST(Json, ErrorsCarryByteOffsets) {
  Result<Value> doc = parse("{\"a\": 1, \"b\": nope}");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.error().message.find("byte"), std::string::npos)
      << doc.error().message;
}

}  // namespace
}  // namespace anyopt::json
