// Concurrent recording on shared telemetry metrics.  Part of the `tsan`
// suite: a ThreadSanitizer build (-DANYOPT_SANITIZE=thread) runs exactly
// these tests, so any lock-ordering or data-race bug in the lock-free
// recording paths fails loudly here.

#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "netbase/telemetry.h"

namespace anyopt::telemetry {
namespace {

class TelemetryConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::global().reset();
    set_enabled(true);
    set_tracing(false);
  }
  void TearDown() override {
    set_enabled(false);
    set_tracing(false);
    Registry::global().reset();
  }

  static constexpr int kThreads = 8;
  static constexpr int kOpsPerThread = 5000;

  static void run_threads(const std::function<void(int)>& body) {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) threads.emplace_back(body, t);
    for (auto& th : threads) th.join();
  }
};

TEST_F(TelemetryConcurrencyTest, CounterAddsAreLossless) {
  Counter& c = Registry::global().counter("conc.counter");
  run_threads([&](int) {
    for (int i = 0; i < kOpsPerThread; ++i) c.add(1);
  });
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

TEST_F(TelemetryConcurrencyTest, GaugeMaxConvergesToGlobalMaximum) {
  Gauge& g = Registry::global().gauge("conc.gauge");
  run_threads([&](int t) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      g.update_max(static_cast<std::int64_t>(t) * kOpsPerThread + i);
    }
  });
  EXPECT_EQ(g.max(),
            static_cast<std::int64_t>(kThreads) * kOpsPerThread - 1);
}

TEST_F(TelemetryConcurrencyTest, HistogramCountSumMinMaxAreExact) {
  Histogram& h = Registry::global().histogram("conc.hist");
  // Each thread records 1..kOpsPerThread; count/sum/min/max are exact
  // (buckets are, too — every thread writes an identical distribution).
  run_threads([&](int) {
    for (int i = 1; i <= kOpsPerThread; ++i) {
      h.record(static_cast<double>(i));
    }
  });
  EXPECT_EQ(h.count(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  const double per_thread_sum =
      static_cast<double>(kOpsPerThread) * (kOpsPerThread + 1) / 2.0;
  EXPECT_DOUBLE_EQ(h.sum(), kThreads * per_thread_sum);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), static_cast<double>(kOpsPerThread));
}

TEST_F(TelemetryConcurrencyTest, ConcurrentRegistrationYieldsOneHandle) {
  // All threads resolve the same four names while recording; handles must
  // be stable and every increment must land on the shared metric.
  auto& reg = Registry::global();
  run_threads([&](int t) {
    const std::string name = "conc.reg." + std::to_string(t % 4);
    for (int i = 0; i < kOpsPerThread / 10; ++i) {
      reg.counter(name).add(1);
    }
  });
  std::uint64_t total = 0;
  for (int k = 0; k < 4; ++k) {
    total += reg.counter_value("conc.reg." + std::to_string(k));
  }
  EXPECT_EQ(total,
            static_cast<std::uint64_t>(kThreads) * (kOpsPerThread / 10));
}

TEST_F(TelemetryConcurrencyTest, ScopedTimersAndTraceCaptureUnderContention) {
  set_tracing(true);
  auto& reg = Registry::global();
  Histogram& h = reg.histogram("conc.span_ms");
  constexpr int kSpansPerThread = 200;
  run_threads([&](int) {
    for (int i = 0; i < kSpansPerThread; ++i) {
      const ScopedTimer span("conc.span", "test", &h,
                             make_args("i", static_cast<std::uint64_t>(i)));
      reg.instant("conc.instant", "test");
    }
  });
  EXPECT_EQ(h.count(),
            static_cast<std::uint64_t>(kThreads) * kSpansPerThread);
  // One span + one instant per iteration, well under the capture cap.
  EXPECT_EQ(reg.trace_event_count(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread * 2);
  // Export under load must produce parseable output (smoke: non-empty,
  // balanced shell); full JSON validation lives in telemetry_test.
  const std::string json = reg.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

TEST_F(TelemetryConcurrencyTest, TogglingWhileRecordingIsSafe) {
  // Flipping the master switch mid-flight must never corrupt metrics or
  // race with recorders (recorders only observe the flag, they never
  // depend on it staying fixed).
  Counter& c = Registry::global().counter("conc.toggle");
  std::thread toggler([] {
    for (int i = 0; i < 2000; ++i) {
      set_enabled(i % 2 == 0);
      std::this_thread::yield();
    }
    set_enabled(true);
  });
  run_threads([&](int) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      if (enabled()) c.add(1);
    }
  });
  toggler.join();
  EXPECT_LE(c.value(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

}  // namespace
}  // namespace anyopt::telemetry
