// Resource monitor: /proc memory snapshots and the background sampler.

#include "netbase/resmon.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "netbase/telemetry.h"

namespace anyopt::resmon {
namespace {

class ResmonTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
  static void reset() {
    telemetry::set_enabled(false);
    telemetry::set_tracing(false);
    telemetry::Registry::global().reset();
  }
};

TEST_F(ResmonTest, ReadMemoryReportsResidentSet) {
  // On Linux (the only platform this repo targets) a running process always
  // has a nonzero resident set, and the high-water mark bounds it.
  const MemorySample sample = read_memory();
  EXPECT_GT(sample.rss_kb, 0);
  EXPECT_GE(sample.peak_rss_kb, sample.rss_kb);
}

TEST_F(ResmonTest, PeakNeverDecreases) {
  const MemorySample before = read_memory();
  // Touch a few megabytes so RSS moves; VmHWM can only grow.
  std::vector<char> ballast(4 << 20, 1);
  EXPECT_GT(ballast[ballast.size() / 2], 0);
  const MemorySample after = read_memory();
  EXPECT_GE(after.peak_rss_kb, before.peak_rss_kb);
}

TEST_F(ResmonTest, SamplerFeedsGaugesAndCountsSamples) {
  telemetry::set_enabled(true);
  {
    Sampler sampler(std::chrono::milliseconds(5));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    sampler.stop();
    // At least the final stop()-time sample ran; with a 5ms period over
    // 30ms there were almost certainly several, but the guarantee tested
    // here is ">= 1 even for a run shorter than the period".
    EXPECT_GE(sampler.samples(), 1u);
  }
  auto& reg = telemetry::Registry::global();
  EXPECT_GT(reg.gauge_value(kRssGauge), 0);
  EXPECT_GE(reg.gauge_max(kPeakRssGauge), reg.gauge_value(kRssGauge));
}

TEST_F(ResmonTest, StopIsIdempotentAndDestructorSafe) {
  telemetry::set_enabled(true);
  Sampler sampler(std::chrono::milliseconds(1000));
  sampler.stop();
  const std::uint64_t after_stop = sampler.samples();
  sampler.stop();  // second stop is a no-op
  EXPECT_EQ(sampler.samples(), after_stop);
}

TEST_F(ResmonTest, TracingExportsCounterRows) {
  telemetry::set_enabled(true);
  telemetry::set_tracing(true);
  {
    Sampler sampler(std::chrono::milliseconds(1000));
    sampler.stop();  // one final sample with tracing on
  }
  const std::string json = telemetry::Registry::global().chrome_trace_json();
  // The RSS counter row must be in the trace as a Chrome 'C' (counter)
  // event; the bytes.* rows only appear once a subsystem reported bytes.
  EXPECT_NE(json.find(kRssGauge), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos) << json;
}

TEST_F(ResmonTest, SamplerWithoutTelemetryStillCounts) {
  // --resmon without --metrics/--trace-out: bench_common enables the
  // telemetry layer, but the sampler itself must also survive a fully
  // disabled registry without crashing (library users may construct it
  // standalone).
  Sampler sampler(std::chrono::milliseconds(1000));
  sampler.stop();
  EXPECT_GE(sampler.samples(), 1u);
}

}  // namespace
}  // namespace anyopt::resmon
