// Library stdio hygiene: no file under src/ may write diagnostics to
// stdout/stderr.  Library code routes diagnostics through the telemetry
// event sink (`Registry::instant`); only bench/tool mains print.  This scan
// keeps the audit from rotting as files are added.
//
// String-building formatters (snprintf into a buffer) are fine and widely
// used; the forbidden tokens are the stream objects and the stdio calls
// that target a FILE*.

#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

bool is_ident_char(char c) {
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
}

/// True when `token` occurs in `line` NOT as a suffix of a longer
/// identifier (so `snprintf(` does not match token `printf(`).
bool has_token(const std::string& line, const std::string& token) {
  for (std::size_t pos = line.find(token); pos != std::string::npos;
       pos = line.find(token, pos + 1)) {
    if (pos == 0 || !is_ident_char(line[pos - 1])) return true;
  }
  return false;
}

TEST(StdioHygiene, LibrarySourcesNeverWriteToStdStreams) {
  const fs::path src = fs::path(ANYOPT_SOURCE_DIR) / "src";
  ASSERT_TRUE(fs::exists(src)) << src;

  const std::vector<std::string> forbidden = {
      "std::cout", "std::cerr", "std::clog", "<iostream>",
      "printf(",  // bare or std:: — snprintf/sprintf don't match (see above)
      "fprintf(", "puts(", "putchar(",
  };

  std::vector<std::string> violations;
  std::size_t files_scanned = 0;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    ++files_scanned;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << entry.path();
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      for (const auto& token : forbidden) {
        if (has_token(line, token)) {
          std::ostringstream v;
          v << fs::relative(entry.path(), src).string() << ":" << lineno
            << ": " << token;
          violations.push_back(v.str());
        }
      }
    }
  }

  EXPECT_GT(files_scanned, 20u) << "scan looked at suspiciously few files";
  EXPECT_TRUE(violations.empty())
      << violations.size() << " stdio writes in library code:\n"
      << [&] {
           std::string all;
           for (const auto& v : violations) all += "  " + v + "\n";
           return all;
         }();
}

}  // namespace
