// bench_common regression tests: the parse_threads contract (numeric-only
// matching, argv removal, and the explicit `--threads=0` clamp that used to
// silently substitute hardware concurrency) and the bench-record writer's
// optional sections (`serve`, `bytes.snapshot`) staying absent until the
// subsystem actually ran.

#include "support/bench_common.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "netbase/json.h"
#include "netbase/telemetry.h"

namespace anyopt::bench {
namespace {

/// Mutable argv fixture: parse_threads edits argc/argv in place.
struct Argv {
  explicit Argv(std::vector<std::string> args) : storage(std::move(args)) {
    pointers.push_back(const_cast<char*>("bench"));
    for (std::string& arg : storage) {
      pointers.push_back(arg.data());
    }
    pointers.push_back(nullptr);
    argc = static_cast<int>(pointers.size()) - 1;
  }
  [[nodiscard]] std::vector<std::string> remaining() const {
    std::vector<std::string> out;
    for (int i = 1; i < argc; ++i) out.emplace_back(pointers[i]);
    return out;
  }
  std::vector<std::string> storage;
  std::vector<char*> pointers;
  int argc = 0;
};

TEST(ParseThreads, ParsesBothFormsAndRemovesThem) {
  Argv equals({"--threads=3", "--other"});
  EXPECT_EQ(parse_threads(equals.argc, equals.pointers.data(), 1), 3u);
  EXPECT_EQ(equals.remaining(), std::vector<std::string>{"--other"});

  Argv spaced({"--threads", "5"});
  EXPECT_EQ(parse_threads(spaced.argc, spaced.pointers.data(), 1), 5u);
  EXPECT_TRUE(spaced.remaining().empty());
}

TEST(ParseThreads, AbsentFlagReturnsTheFallback) {
  Argv none({"--metrics"});
  EXPECT_EQ(parse_threads(none.argc, none.pointers.data(), 4), 4u);
  EXPECT_EQ(none.remaining(), std::vector<std::string>{"--metrics"});
}

TEST(ParseThreads, ExplicitZeroClampsToSerial) {
  // The regression: `--threads=0` used to be forwarded verbatim, so the
  // pool silently substituted hardware concurrency while the bench record
  // claimed 0 threads.  The contract now clamps to 1 (with a stderr note).
  Argv zero({"--threads=0"});
  EXPECT_EQ(parse_threads(zero.argc, zero.pointers.data(), 4), 1u);
  Argv spaced_zero({"--threads", "0"});
  EXPECT_EQ(parse_threads(spaced_zero.argc, spaced_zero.pointers.data(), 4),
            1u);
}

TEST(ParseThreads, NonNumericValuesAreLeftForDownstreamParsers) {
  // `--threads=abc` stays in argv (a later parser rejects it by name) and
  // a bare `--threads` must not eat a following flag.
  Argv alpha({"--threads=abc"});
  EXPECT_EQ(parse_threads(alpha.argc, alpha.pointers.data(), 2), 2u);
  EXPECT_EQ(alpha.remaining(), std::vector<std::string>{"--threads=abc"});

  Argv dangling({"--threads", "--metrics"});
  EXPECT_EQ(parse_threads(dangling.argc, dangling.pointers.data(), 2), 2u);
  EXPECT_EQ(dangling.remaining(),
            (std::vector<std::string>{"--threads", "--metrics"}));
}

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string text;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);
  return text;
}

TEST(BenchJson, OptionalSectionsAppearOnlyWhenTheSubsystemRan) {
  telemetry::Registry::global().reset();
  TelemetryOptions options;
  options.json_out = ::testing::TempDir() + "bench_common_test_plain.json";

  // Without serve activity: no "serve" section, no bytes.snapshot.
  write_bench_json("unit", 0.25, options);
  Result<json::Value> plain = json::parse(slurp(options.json_out));
  ASSERT_TRUE(plain.ok()) << plain.error().message;
  EXPECT_EQ(plain.value().find("serve"), nullptr);
  const json::Value* bytes = plain.value().find("bytes");
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(bytes->find("snapshot"), nullptr);

  // With a registered extra and a live bytes.snapshot gauge, both appear.
  telemetry::Registry::global().gauge("bytes.snapshot").add(1234);
  set_bench_json_extra("serve", "{\"queries\": 10, \"qps\": 99.5}");
  options.json_out = ::testing::TempDir() + "bench_common_test_serve.json";
  write_bench_json("unit", 0.25, options);
  Result<json::Value> with = json::parse(slurp(options.json_out));
  ASSERT_TRUE(with.ok()) << with.error().message;
  const json::Value* serve = with.value().find("serve");
  ASSERT_NE(serve, nullptr);
  EXPECT_EQ(serve->find("qps")->number_value, 99.5);
  const json::Value* bytes2 = with.value().find("bytes");
  ASSERT_NE(bytes2, nullptr);
  ASSERT_NE(bytes2->find("snapshot"), nullptr);
  EXPECT_EQ(bytes2->find("snapshot")->as_u64(), 1234u);

  std::remove((::testing::TempDir() + "bench_common_test_plain.json").c_str());
  std::remove(options.json_out.c_str());
  telemetry::Registry::global().reset();
}

}  // namespace
}  // namespace anyopt::bench
