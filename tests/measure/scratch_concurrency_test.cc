// Per-worker SimScratch arenas under concurrency.  Each pool worker owns
// exactly one recycled-allocation arena and the orchestrator's fallback
// scratch is thread-local, so a pooled campaign with scratch reuse enabled
// must be data-race-free — this suite is labelled `tsan` and runs under
// ThreadSanitizer (-DANYOPT_SANITIZE=thread) to prove it — and must still
// produce bit-identical results to the serial, reuse-free path.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "anycast/world.h"
#include "measure/campaign_runner.h"
#include "netbase/rng.h"

namespace anyopt::measure {
namespace {

const anycast::World& shared_world() {
  static const std::unique_ptr<anycast::World> world =
      anycast::World::create(anycast::WorldParams::test_scale(27));
  return *world;
}

std::vector<ExperimentSpec> specs_for(const anycast::Deployment& depl,
                                      std::size_t count) {
  std::vector<ExperimentSpec> specs;
  const std::size_t sites = depl.site_count();
  for (std::size_t k = 0; k < count; ++k) {
    ExperimentSpec spec;
    spec.config.announce_order = {
        SiteId{static_cast<SiteId::underlying_type>(k % sites)},
        SiteId{static_cast<SiteId::underlying_type>((k * 3 + 1) % sites)}};
    spec.nonce = mix64(0x5C4A, k);
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST(ScratchConcurrency, PooledScratchReuseMatchesSerialNoReuse) {
  const Orchestrator orchestrator(shared_world());
  const auto specs = specs_for(shared_world().deployment(), 16);

  CampaignRunnerOptions serial_options;
  serial_options.threads = 1;
  serial_options.reuse_scratch = false;
  const CampaignRunner serial(orchestrator, serial_options);
  const std::vector<Census> want = serial.run(specs);

  CampaignRunnerOptions pooled_options;
  pooled_options.threads = 4;
  const CampaignRunner pooled(orchestrator, pooled_options);

  // Two batches through the same pool: the second run recycles warm
  // arenas, which is exactly the state TSan needs to observe workers
  // re-touching buffers a (different) experiment wrote earlier.
  for (int round = 0; round < 2; ++round) {
    const std::vector<Census> got = pooled.run(specs);
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(want[i].site_of_target, got[i].site_of_target)
          << "round " << round << " experiment " << i;
      EXPECT_EQ(want[i].attachment_of_target, got[i].attachment_of_target)
          << "round " << round << " experiment " << i;
      ASSERT_EQ(want[i].rtt_ms.size(), got[i].rtt_ms.size());
      for (std::size_t t = 0; t < want[i].rtt_ms.size(); ++t) {
        ASSERT_EQ(want[i].rtt_ms[t], got[i].rtt_ms[t])
            << "round " << round << " experiment " << i << " target " << t;
      }
    }
  }
}

TEST(ScratchConcurrency, ConcurrentRunnersDoNotShareScratch) {
  // Two pooled runners over the same orchestrator, run back to back: each
  // pool's workers index only their own runner's arenas, and the
  // orchestrator's thread-local fallback keeps non-worker callers apart.
  const Orchestrator orchestrator(shared_world());
  const auto specs = specs_for(shared_world().deployment(), 8);

  const CampaignRunner first(orchestrator, {.threads = 2});
  const CampaignRunner second(orchestrator, {.threads = 2});
  const std::vector<Census> a = first.run(specs);
  const std::vector<Census> b = second.run(specs);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].site_of_target, b[i].site_of_target) << "experiment " << i;
    EXPECT_EQ(a[i].rtt_ms, b[i].rtt_ms) << "experiment " << i;
  }
}

}  // namespace
}  // namespace anyopt::measure
