// Sharded census aggregation (measure/census_shards.h): lazy allocation,
// eager release, and the merge-order-invariance contract that makes a
// parallel resolve pass a pure scheduling change.  The concurrency test at
// the bottom is the tsan target: disjoint-range writers share no shard, so
// the sanitizer proves the "single-writer per shard" rule is enough.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "bgp/origin.h"
#include "measure/census_shards.h"
#include "netbase/ids.h"
#include "netbase/rng.h"

namespace anyopt::measure {
namespace {

constexpr std::size_t kWidth = CensusShards::kShardWidth;

/// Deterministic per-target record so every writer agrees on what target
/// `t` holds and reads can be checked without a side table.
SiteId site_of(std::size_t t) {
  return SiteId{static_cast<SiteId::underlying_type>(mix64(t) % 19)};
}
bgp::AttachmentIndex attachment_of(std::size_t t) {
  return static_cast<bgp::AttachmentIndex>(mix64(t, 1) % 37);
}
double latency_of(std::size_t t) {
  return 1.0 + static_cast<double>(mix64(t, 2) % 4096) * 0.03125;
}

void write_target(CensusShards& shards, std::size_t t) {
  shards.set(t, site_of(t), attachment_of(t), latency_of(t));
}

void expect_written(const CensusShards& shards, std::size_t t) {
  ASSERT_TRUE(shards.written(t)) << "target " << t;
  EXPECT_EQ(shards.site(t), site_of(t)) << "target " << t;
  EXPECT_EQ(shards.attachment(t), attachment_of(t)) << "target " << t;
  // operator== on doubles deliberately: byte-identical, not "close".
  EXPECT_EQ(shards.one_way_ms(t), latency_of(t)) << "target " << t;
}

TEST(CensusShards, UnwrittenMeansUnreachableAndCostsNothing) {
  const CensusShards shards(10 * kWidth);
  EXPECT_EQ(shards.target_count(), 10 * kWidth);
  EXPECT_EQ(shards.allocated_shards(), 0u);
  for (const std::size_t t : {std::size_t{0}, kWidth + 7, 10 * kWidth - 1}) {
    EXPECT_FALSE(shards.written(t));
  }
  // The empty plane retains only the shard directory, not shard storage.
  EXPECT_LT(shards.retained_bytes(), kWidth);
}

TEST(CensusShards, AllocatesLazilyPerTouchedShard) {
  CensusShards shards(8 * kWidth);
  write_target(shards, 3);
  EXPECT_EQ(shards.allocated_shards(), 1u);
  const std::size_t one_shard = shards.retained_bytes();
  write_target(shards, 5);  // same shard: no new allocation
  EXPECT_EQ(shards.allocated_shards(), 1u);
  EXPECT_EQ(shards.retained_bytes(), one_shard);
  write_target(shards, 6 * kWidth + 1);  // a sparse catchment far away
  EXPECT_EQ(shards.allocated_shards(), 2u);
  EXPECT_GT(shards.retained_bytes(), one_shard);
  expect_written(shards, 3);
  expect_written(shards, 5);
  expect_written(shards, 6 * kWidth + 1);
  EXPECT_FALSE(shards.written(4));
  EXPECT_FALSE(shards.written(7 * kWidth));
}

TEST(CensusShards, ReleaseThroughFreesThePrefixAndReadsAsUnwritten) {
  CensusShards shards(4 * kWidth);
  for (std::size_t t = 0; t < 4 * kWidth; t += 97) write_target(shards, t);
  EXPECT_EQ(shards.allocated_shards(), 4u);
  const std::size_t full = shards.retained_bytes();

  // A cursor mid-shard releases only the shards that END at or before it.
  shards.release_through(kWidth + 5);
  EXPECT_EQ(shards.allocated_shards(), 3u);
  EXPECT_LT(shards.retained_bytes(), full);
  EXPECT_FALSE(shards.written(0));  // released prefix
  const std::size_t first_in_shard1 = 97 * ((kWidth + 96) / 97);
  expect_written(shards, first_in_shard1);  // surviving shard, past cursor
  expect_written(shards, 97 * ((3 * kWidth + 96) / 97));  // untouched tail

  // Draining the whole plane returns everything but the directory.
  shards.release_through(4 * kWidth - 1);
  EXPECT_EQ(shards.allocated_shards(), 0u);
  for (std::size_t t = 0; t < 4 * kWidth; t += 97) {
    EXPECT_FALSE(shards.written(t));
  }
}

TEST(CensusShards, MergeStealsWholeShardsAndInterleavesWithinShards) {
  // Two writers: `a` owns even shards plus some entries of shard 1, `b`
  // owns the rest of shard 1 (entry-level interleave) and shard 3 (whole-
  // shard steal, since `a` never touched it).
  CensusShards a(4 * kWidth);
  CensusShards b(4 * kWidth);
  for (std::size_t t = 0; t < kWidth; t += 11) write_target(a, t);
  for (std::size_t t = kWidth; t < 2 * kWidth; t += 2) write_target(a, t);
  for (std::size_t t = kWidth + 1; t < 2 * kWidth; t += 2) write_target(b, t);
  for (std::size_t t = 3 * kWidth; t < 4 * kWidth; t += 5) write_target(b, t);

  a.merge(std::move(b));
  EXPECT_EQ(a.allocated_shards(), 3u);
  for (std::size_t t = 0; t < kWidth; t += 11) expect_written(a, t);
  for (std::size_t t = kWidth; t < 2 * kWidth; ++t) expect_written(a, t);
  for (std::size_t t = 3 * kWidth; t < 4 * kWidth; t += 5) expect_written(a, t);
  EXPECT_FALSE(a.written(2 * kWidth));  // neither writer touched shard 2
}

TEST(CensusShards, MergeOrderDoesNotChangeTheCensus) {
  // Three disjoint writers merged in two different orders must yield a
  // plane whose every read is identical — the contract that lets a future
  // parallel resolve pass pick any join order.
  const std::size_t n = 6 * kWidth;
  const auto writer = [n](int which) {
    CensusShards shards(n);
    for (std::size_t t = static_cast<std::size_t>(which); t < n; t += 3) {
      if (mix64(t, 0xDECAF) % 4 == 0) continue;  // unreachable holes
      write_target(shards, t);
    }
    return shards;
  };

  CensusShards forward = writer(0);
  forward.merge(writer(1));
  forward.merge(writer(2));

  CensusShards backward = writer(2);
  backward.merge(writer(1));
  backward.merge(writer(0));

  ASSERT_EQ(forward.target_count(), backward.target_count());
  EXPECT_EQ(forward.allocated_shards(), backward.allocated_shards());
  EXPECT_EQ(forward.retained_bytes(), backward.retained_bytes());
  for (std::size_t t = 0; t < n; ++t) {
    ASSERT_EQ(forward.written(t), backward.written(t)) << "target " << t;
    if (!forward.written(t)) continue;
    ASSERT_EQ(forward.site(t), backward.site(t)) << "target " << t;
    ASSERT_EQ(forward.attachment(t), backward.attachment(t)) << "target " << t;
    ASSERT_EQ(forward.one_way_ms(t), backward.one_way_ms(t)) << "target " << t;
  }
}

TEST(CensusShards, ConcurrentDisjointWritersMergeToTheSamePlane) {
  // The tsan target: resolve workers own disjoint CONTIGUOUS target ranges
  // (so shard ownership is disjoint except at range boundaries, which lazy
  // allocation keeps private per plane), write concurrently into their own
  // planes, and the planes then merge in two different orders.  Under
  // ThreadSanitizer this proves the aggregation needs no locks; the final
  // comparison proves scheduling never leaks into census bytes.
  constexpr std::size_t kWorkers = 4;
  const std::size_t n = kWorkers * 3 * kWidth + kWidth / 2;

  const auto run_workers = [n]() {
    std::vector<CensusShards> planes;
    planes.reserve(kWorkers);
    for (std::size_t w = 0; w < kWorkers; ++w) planes.emplace_back(n);
    std::vector<std::thread> threads;
    threads.reserve(kWorkers);
    const std::size_t chunk = (n + kWorkers - 1) / kWorkers;
    for (std::size_t w = 0; w < kWorkers; ++w) {
      threads.emplace_back([&planes, w, chunk, n] {
        const std::size_t begin = w * chunk;
        const std::size_t end = begin + chunk < n ? begin + chunk : n;
        for (std::size_t t = begin; t < end; ++t) {
          if (mix64(t, 0xBEEF) % 5 == 0) continue;
          write_target(planes[w], t);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    return planes;
  };

  std::vector<CensusShards> first = run_workers();
  CensusShards merged_forward = std::move(first[0]);
  for (std::size_t w = 1; w < kWorkers; ++w) {
    merged_forward.merge(std::move(first[w]));
  }

  std::vector<CensusShards> second = run_workers();
  CensusShards merged_backward = std::move(second[kWorkers - 1]);
  for (std::size_t w = kWorkers - 1; w-- > 0;) {
    merged_backward.merge(std::move(second[w]));
  }

  for (std::size_t t = 0; t < n; ++t) {
    ASSERT_EQ(merged_forward.written(t), merged_backward.written(t))
        << "target " << t;
    if (!merged_forward.written(t)) continue;
    expect_written(merged_forward, t);
    ASSERT_EQ(merged_forward.one_way_ms(t), merged_backward.one_way_ms(t))
        << "target " << t;
  }
}

TEST(CensusShards, ConcurrentScatteredWritersInterleaveWithinSharedShards) {
  // The parallel resolve pass's actual shape: workers take contiguous
  // chunks of the AS-GROUPED resolve order, so the target ids one worker
  // writes are scattered across the whole id space and every shard is
  // touched by several planes — entry-disjointly.  Writers stay lock-free
  // (each plane is private until the merge) and the merge's entry-level
  // interleave path must reassemble the exact serial plane regardless of
  // join order.
  constexpr std::size_t kWorkers = 4;
  const std::size_t n = 3 * kWidth + kWidth / 4;

  const auto member = [](std::size_t t) {
    return mix64(t, 0x5CA7) % 6 != 0;  // unreachable holes
  };
  const auto owner = [](std::size_t t) {
    return static_cast<std::size_t>(mix64(t, 0x0D1) % kWorkers);
  };

  const auto run_workers = [&]() {
    std::vector<CensusShards> planes;
    planes.reserve(kWorkers);
    for (std::size_t w = 0; w < kWorkers; ++w) planes.emplace_back(n);
    std::vector<std::thread> threads;
    threads.reserve(kWorkers);
    for (std::size_t w = 0; w < kWorkers; ++w) {
      threads.emplace_back([&planes, &member, &owner, w, n] {
        for (std::size_t t = 0; t < n; ++t) {
          if (owner(t) != w || !member(t)) continue;
          write_target(planes[w], t);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    return planes;
  };

  // The serial reference: one plane, one writer, same membership.
  CensusShards serial(n);
  for (std::size_t t = 0; t < n; ++t) {
    if (member(t)) write_target(serial, t);
  }

  std::vector<CensusShards> first = run_workers();
  CensusShards forward = std::move(first[0]);
  for (std::size_t w = 1; w < kWorkers; ++w) forward.merge(std::move(first[w]));

  std::vector<CensusShards> second = run_workers();
  CensusShards backward = std::move(second[kWorkers - 1]);
  for (std::size_t w = kWorkers - 1; w-- > 0;) {
    backward.merge(std::move(second[w]));
  }

  for (std::size_t t = 0; t < n; ++t) {
    ASSERT_EQ(serial.written(t), forward.written(t)) << "target " << t;
    ASSERT_EQ(serial.written(t), backward.written(t)) << "target " << t;
    if (!serial.written(t)) continue;
    expect_written(forward, t);
    expect_written(backward, t);
  }
}

}  // namespace
}  // namespace anyopt::measure
