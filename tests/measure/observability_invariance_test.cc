// Observability invariance: the resource-monitor sampler and the provenance
// flight log are pure observers.  A campaign re-run with the sampler
// hammering the gauges from its own thread AND every experiment writing a
// provenance line must produce bit-identical censuses — and the flight log
// must contain exactly one line per experiment (the per-experiment
// invariant `anyopt_bench explain` relies on).
//
// Runs under the `tsan` label: the sampler reads the bytes.* gauges while
// campaign workers write them, which is exactly where an unsynchronized
// read would hide.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "measure/campaign_runner.h"
#include "measure/provenance.h"
#include "measure/store.h"
#include "netbase/json.h"
#include "netbase/resmon.h"
#include "netbase/rng.h"
#include "netbase/telemetry.h"
#include "support/core_fixture.h"
#include "topo/serialize.h"

namespace anyopt::measure {
namespace {

using anyopt::testing::default_env;

/// Reads a whole file (the JSONL flight logs are tiny in tests).
std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string text;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);
  return text;
}

/// Splits a flight log into parsed JSON lines (asserts each parses).
std::vector<json::Value> parse_lines(const std::string& path) {
  std::vector<json::Value> lines;
  std::string text = slurp(path);
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string_view line(text.data() + start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    Result<json::Value> doc = json::parse(line);
    EXPECT_TRUE(doc.ok()) << line;
    if (doc.ok()) lines.push_back(std::move(doc).value());
  }
  return lines;
}

class ObservabilityInvarianceTest : public ::testing::Test {
 protected:
  void SetUp() override { force_off(); }
  void TearDown() override {
    force_off();
    std::remove(log_path().c_str());
  }
  static void force_off() {
    provenance::FlightLog::global().close();
    telemetry::set_enabled(false);
    telemetry::set_tracing(false);
    telemetry::Registry::global().reset();
  }
  // ctest runs each test of this binary as its own process, possibly in
  // parallel — the log path must be per-process or concurrent tests clobber
  // each other's flight logs.
  static std::string log_path() {
    return ::testing::TempDir() + "anyopt_obs_invariance_" +
           std::to_string(getpid()) + ".jsonl";
  }
};

std::vector<ExperimentSpec> campaign_specs(const anycast::Deployment& depl) {
  std::vector<ExperimentSpec> specs;
  const std::size_t sites = depl.site_count();
  for (std::size_t k = 0; k < 12; ++k) {
    ExperimentSpec spec;
    spec.config.announce_order = {
        SiteId{static_cast<SiteId::underlying_type>(k % sites)},
        SiteId{static_cast<SiteId::underlying_type>((k + 1 + k / sites) %
                                                    sites)}};
    spec.nonce = mix64(0x0B5E, k);
    spec.ordinal = k;
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST_F(ObservabilityInvarianceTest, CensusesBitIdenticalWithObserversOn) {
  const auto& env = default_env();
  const auto specs = campaign_specs(env.orchestrator->world().deployment());
  const CampaignRunner runner(*env.orchestrator, {.threads = 4});

  const std::vector<Census> off = runner.run(specs);

  // Everything on: metrics, tracing, a fast sampler, and the flight log.
  telemetry::set_enabled(true);
  telemetry::set_tracing(true);
  ASSERT_TRUE(provenance::FlightLog::global().open(log_path()));
  std::vector<Census> on;
  {
    resmon::Sampler sampler(std::chrono::milliseconds(1));
    on = runner.run(specs);
    sampler.stop();
    EXPECT_GE(sampler.samples(), 1u);
  }
  provenance::FlightLog::global().close();

  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i].site_of_target, on[i].site_of_target)
        << "experiment " << i;
    EXPECT_EQ(off[i].attachment_of_target, on[i].attachment_of_target)
        << "experiment " << i;
    ASSERT_EQ(off[i].rtt_ms.size(), on[i].rtt_ms.size());
    for (std::size_t t = 0; t < off[i].rtt_ms.size(); ++t) {
      ASSERT_EQ(off[i].rtt_ms[t], on[i].rtt_ms[t])
          << "experiment " << i << " target " << t;
    }
  }
}

TEST_F(ObservabilityInvarianceTest, ExactlyOneProvenanceLinePerExperiment) {
  const auto& env = default_env();
  const auto specs = campaign_specs(env.orchestrator->world().deployment());
  const CampaignRunner runner(*env.orchestrator, {.threads = 2});

  telemetry::set_enabled(true);
  ASSERT_TRUE(provenance::FlightLog::global().open(log_path()));
  const std::vector<Census> censuses = runner.run(specs);
  EXPECT_EQ(provenance::FlightLog::global().records(), specs.size());
  provenance::FlightLog::global().close();

  const std::vector<json::Value> lines = parse_lines(log_path());
  ASSERT_EQ(lines.size(), specs.size());
  // Every spec's nonce appears exactly once, with the simulated path and a
  // census-sized probe record.
  std::set<std::string> seen;
  for (const json::Value& line : lines) {
    const json::Value* nonce = line.find("nonce");
    ASSERT_NE(nonce, nullptr);
    EXPECT_TRUE(seen.insert(nonce->string_value).second)
        << "duplicate line for nonce " << nonce->string_value;
    const json::Value* path = line.find("path");
    ASSERT_NE(path, nullptr);
    EXPECT_EQ(path->string_value, "classic");
    EXPECT_GT(line.find("sim_events")->as_u64(), 0u);
    EXPECT_EQ(line.find("targets")->as_u64(),
              censuses[0].site_of_target.size());
    EXPECT_GT(line.find("probes_sent")->as_u64(), 0u);
  }
  char expect[17];
  for (const ExperimentSpec& spec : specs) {
    std::snprintf(expect, sizeof expect, "%016llx",
                  static_cast<unsigned long long>(spec.nonce));
    EXPECT_TRUE(seen.count(expect) == 1) << "missing nonce " << expect;
  }
}

TEST_F(ObservabilityInvarianceTest, StoreHitsRecordTheirOwnPath) {
  const auto& env = default_env();
  const auto specs = campaign_specs(env.orchestrator->world().deployment());

  const std::string store_path =
      ::testing::TempDir() + "anyopt_obs_store.bin";
  std::remove(store_path.c_str());
  Result<std::unique_ptr<ResultStore>> store = ResultStore::open(
      store_path, topo::topology_fingerprint(env.world->internet()));
  ASSERT_TRUE(store.ok());
  const CampaignRunner runner(
      *env.orchestrator, {.threads = 1, .store = store.value().get()});

  // First pass simulates and persists; second pass replays from the store.
  telemetry::set_enabled(true);
  const std::vector<Census> cold = runner.run(specs);
  ASSERT_TRUE(provenance::FlightLog::global().open(log_path()));
  const std::vector<Census> warm = runner.run(specs);
  provenance::FlightLog::global().close();

  ASSERT_EQ(cold.size(), warm.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(cold[i].site_of_target, warm[i].site_of_target);
    EXPECT_EQ(cold[i].rtt_ms, warm[i].rtt_ms);
  }
  const std::vector<json::Value> lines = parse_lines(log_path());
  ASSERT_EQ(lines.size(), specs.size());
  for (const json::Value& line : lines) {
    const json::Value* path = line.find("path");
    ASSERT_NE(path, nullptr);
    EXPECT_EQ(path->string_value, "store-hit");
    EXPECT_EQ(line.find("sim_events")->as_u64(), 0u);
    EXPECT_GT(line.find("targets")->as_u64(), 0u);
  }
  std::remove(store_path.c_str());
}

TEST_F(ObservabilityInvarianceTest, InactiveFlightLogWritesNothing) {
  const auto& env = default_env();
  const auto specs = campaign_specs(env.orchestrator->world().deployment());
  const CampaignRunner runner(*env.orchestrator, {.threads = 1});
  // Telemetry on, flight log NOT opened: no lines, no crash.
  telemetry::set_enabled(true);
  (void)runner.run(specs);
  EXPECT_FALSE(provenance::active());
  EXPECT_EQ(slurp(log_path()), "");
}

}  // namespace
}  // namespace anyopt::measure
