// Incremental re-convergence invariance: measuring an experiment as a
// copy-on-write overlay over a SHARED converged base must produce exactly
// the bits that a private, freshly-converged base produces — at every
// thread count.  The sharing is purely an allocation/latency optimization;
// censuses, discovery tables and per-target explanations are the proof.
//
// Also covers the fault-layer contract: schedules the overlay engine
// cannot express incrementally (session flaps) must fall back to classic
// runs and stay bit-identical to a classic campaign.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "anycast/world.h"
#include "bgp/simulator.h"
#include "core/discovery.h"
#include "core/peers.h"
#include "measure/campaign_runner.h"
#include "measure/orchestrator.h"
#include "netbase/fault.h"
#include "netbase/rng.h"
#include "netbase/telemetry.h"

namespace anyopt::measure {
namespace {

struct Env {
  std::unique_ptr<anycast::World> world;
  std::unique_ptr<Orchestrator> orchestrator;
};

/// One shared world for the whole binary (world construction costs
/// seconds; every suite here measures the same deployment).
Env& env() {
  static Env e = [] {
    Env out;
    out.world = anycast::World::create(anycast::WorldParams::test_scale(21));
    out.orchestrator = std::make_unique<Orchestrator>(*out.world);
    return out;
  }();
  return e;
}

/// Keeps telemetry state from leaking between suites in this binary.
class IncrementalInvarianceTest : public ::testing::Test {
 protected:
  void SetUp() override { force_off(); }
  void TearDown() override { force_off(); }
  static void force_off() {
    telemetry::set_enabled(false);
    telemetry::set_tracing(false);
    telemetry::Registry::global().reset();
  }
};

void expect_censuses_identical(const std::vector<Census>& a,
                               const std::vector<Census>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].site_of_target, b[i].site_of_target) << "census " << i;
    EXPECT_EQ(a[i].attachment_of_target, b[i].attachment_of_target)
        << "census " << i;
    ASSERT_EQ(a[i].rtt_ms.size(), b[i].rtt_ms.size());
    for (std::size_t t = 0; t < a[i].rtt_ms.size(); ++t) {
      // operator== on doubles deliberately: bit-identical, not "close".
      ASSERT_EQ(a[i].rtt_ms[t], b[i].rtt_ms[t])
          << "census " << i << " target " << t;
    }
  }
}

void expect_tables_identical(const core::PairwiseTable& a,
                             const core::PairwiseTable& b) {
  EXPECT_EQ(a.item_count, b.item_count);
  EXPECT_EQ(a.target_count, b.target_count);
  EXPECT_EQ(a.outcome, b.outcome);
}

/// A batch of overlay pair specs shaped like a provider-level discovery
/// campaign: each pair forks `base_of_first` and announces the second
/// site as the delta, leg 1 re-ages the first site's session.
std::vector<OverlayPairSpec> overlay_specs(
    const Orchestrator& orch,
    const std::vector<bgp::BaseState>& bases,
    const std::vector<std::pair<SiteId, SiteId>>& pairs) {
  const auto& depl = orch.world().deployment();
  std::vector<OverlayPairSpec> specs(pairs.size());
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    const auto [first, second] = pairs[k];
    OverlayPairSpec& spec = specs[k];
    spec.base = &bases[k];
    spec.config0.announce_order = {first, second};
    spec.config1.announce_order = {second, first};
    spec.delta = {bgp::Injection{spec.config0.spacing_s,
                                 depl.transit_attachment(second), false}};
    spec.reage = {depl.transit_attachment(first)};
    spec.nonce0 = mix64(mix64(0x17C4E, first.value()), second.value());
    spec.nonce1 = spec.nonce0 ^ 1;
    spec.ordinal0 = 2 * k;
    spec.ordinal1 = 2 * k + 1;
  }
  return specs;
}

std::vector<std::pair<SiteId, SiteId>> sample_pairs(const Orchestrator& orch) {
  const std::size_t sites = orch.world().deployment().site_count();
  std::vector<std::pair<SiteId, SiteId>> pairs;
  for (std::size_t k = 0; k < 6; ++k) {
    const auto i = static_cast<SiteId::underlying_type>(k % sites);
    const auto j =
        static_cast<SiteId::underlying_type>((k + 1 + k / sites) % sites);
    if (i == j) continue;
    pairs.push_back({SiteId{i}, SiteId{j}});
  }
  return pairs;
}

TEST_F(IncrementalInvarianceTest,
       OverlayCensusesSharedVsFromScratchBitIdenticalAcrossThreads) {
  const Orchestrator& orch = *env().orchestrator;
  const auto pairs = sample_pairs(orch);

  const auto converge_all = [&] {
    std::vector<bgp::BaseState> bases;
    bases.reserve(pairs.size());
    for (const auto& [first, second] : pairs) {
      anycast::AnycastConfig cfg;
      cfg.announce_order = {first};
      bases.push_back(orch.converge_base(cfg, mix64(0xBA5E, first.value())));
    }
    return bases;
  };

  // Reference: every pair over its own freshly-converged ("from scratch")
  // base, serially.
  const std::vector<bgp::BaseState> private_bases = converge_all();
  const CampaignRunner reference(orch, {.threads = 1});
  const std::vector<Census> want =
      reference.run_overlay_pairs(overlay_specs(orch, private_bases, pairs));

  // Candidate: a second, independently converged set of bases shared by
  // the batch, fanned over 1/2/4 workers.
  const std::vector<bgp::BaseState> shared_bases = converge_all();
  for (const std::size_t threads : {1u, 2u, 4u}) {
    const CampaignRunner runner(orch, {.threads = threads});
    const std::vector<Census> got =
        runner.run_overlay_pairs(overlay_specs(orch, shared_bases, pairs));
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_censuses_identical(want, got);
  }
}

TEST_F(IncrementalInvarianceTest,
       DiscoveryTablesSharedVsPrivateBasesBitIdenticalAcrossThreads) {
  // The full discovery stack: incremental with the shared-base cache must
  // equal incremental with per-pair private bases (the from-scratch
  // equivalent) at every thread count — tables, views and experiment
  // counts.
  core::DiscoveryOptions reference_options;
  reference_options.incremental = true;
  reference_options.incremental_private_bases = true;
  reference_options.threads = 1;
  const core::Discovery reference(*env().orchestrator, reference_options);
  std::size_t want_runs = 0;
  const auto want = reference.provider_level_views(&want_runs);
  const core::DiscoveryResult want_full = reference.run();

  for (const std::size_t threads : {1u, 2u, 4u}) {
    core::DiscoveryOptions options;
    options.incremental = true;
    options.threads = threads;
    const core::Discovery shared(*env().orchestrator, options);
    std::size_t got_runs = 0;
    const auto got = shared.provider_level_views(&got_runs);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(got_runs, want_runs);
    expect_tables_identical(want.ordered, got.ordered);
    expect_tables_identical(want.naive, got.naive);

    const core::DiscoveryResult got_full = shared.run();
    EXPECT_EQ(got_full.experiments, want_full.experiments);
    expect_tables_identical(want_full.provider_prefs,
                            got_full.provider_prefs);
    ASSERT_EQ(got_full.site_prefs.size(), want_full.site_prefs.size());
    for (std::size_t p = 0; p < want_full.site_prefs.size(); ++p) {
      SCOPED_TRACE("provider " + std::to_string(p));
      expect_tables_identical(want_full.site_prefs[p],
                              got_full.site_prefs[p]);
    }
  }
}

TEST_F(IncrementalInvarianceTest,
       OverlayExplanationsMatchFromScratchBase) {
  // Below the census: the overlay ROUTING STATE itself must explain every
  // sampled target identically whether it forked a shared or a private
  // base.
  const Orchestrator& orch = *env().orchestrator;
  const auto& depl = orch.world().deployment();
  const auto& targets = env().world->targets();
  anycast::AnycastConfig base_cfg;
  base_cfg.announce_order = {SiteId{0}};
  const std::uint64_t base_nonce = mix64(0xBA5E, 0);
  const std::uint64_t nonce = mix64(0x0E, 1);
  const std::vector<bgp::Injection> delta{
      {base_cfg.spacing_s, depl.transit_attachment(SiteId{1}), false}};

  const bgp::BaseState shared =
      orch.converge_base(base_cfg, base_nonce);
  const bgp::BaseState private_base =
      orch.converge_base(base_cfg, base_nonce);
  const auto& sim = env().world->simulator();
  const bgp::RoutingState a = sim.run_overlay(shared, delta, nonce);
  const bgp::RoutingState b = sim.run_overlay(private_base, delta, nonce);

  const std::size_t step = std::max<std::size_t>(1, targets.size() / 40);
  for (std::size_t t = 0; t < targets.size(); t += step) {
    const anycast::Target& tgt =
        targets.target(TargetId{static_cast<TargetId::underlying_type>(t)});
    EXPECT_EQ(a.explain(tgt.as, tgt.where, t)
                  .to_string(env().world->internet()),
              b.explain(tgt.as, tgt.where, t)
                  .to_string(env().world->internet()))
        << "target " << t;
  }
}

TEST_F(IncrementalInvarianceTest, OverlayMachineryActuallyEngages) {
  // Guard against the suite passing vacuously: an incremental campaign
  // must fork overlays and propagate deltas (and a classic campaign must
  // not).
  telemetry::set_enabled(true);
  auto& reg = telemetry::Registry::global();

  core::DiscoveryOptions options;
  options.incremental = true;
  const core::Discovery incremental(*env().orchestrator, options);
  std::size_t runs = 0;
  (void)incremental.provider_level_views(&runs);
  EXPECT_GT(reg.counter_value("sim.overlay.forks"), 0u);
  EXPECT_GT(reg.counter_value("sim.overlay.delta_events"), 0u);

  reg.reset();
  const core::Discovery classic(*env().orchestrator, {});
  (void)classic.provider_level(&runs);
  EXPECT_EQ(reg.counter_value("sim.overlay.forks"), 0u);
}

TEST_F(IncrementalInvarianceTest,
       FlapSchedulesFallBackToClassicBitForBit) {
  // Session flaps rewrite the base schedule itself, which an overlay
  // cannot express — the incremental path must detect this per experiment
  // and fall back to the classic run, making an incremental campaign
  // bit-identical to a classic one, again at every thread count.
  fault::FaultPlan plan;
  fault::SessionFlap flap;
  flap.attachment = 0;
  flap.first_down_s = 30.0;
  flap.down_dwell_s = 60.0;
  flap.up_dwell_s = 600.0;
  flap.cycles = 1;
  plan.session_flaps.push_back(flap);
  const fault::FaultInjector injector{std::move(plan)};

  OrchestratorOptions orch_options;
  orch_options.faults = &injector;
  const Orchestrator faulted(*env().world, orch_options);

  core::DiscoveryOptions classic_options;
  const core::Discovery classic(faulted, classic_options);
  const core::DiscoveryResult want = classic.run();

  for (const std::size_t threads : {1u, 2u, 4u}) {
    core::DiscoveryOptions options;
    options.incremental = true;
    options.threads = threads;
    const core::Discovery incremental(faulted, options);
    const core::DiscoveryResult got = incremental.run();
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(got.experiments, want.experiments);
    expect_tables_identical(want.provider_prefs, got.provider_prefs);
    ASSERT_EQ(got.site_prefs.size(), want.site_prefs.size());
    for (std::size_t p = 0; p < want.site_prefs.size(); ++p) {
      SCOPED_TRACE("provider " + std::to_string(p));
      expect_tables_identical(want.site_prefs[p], got.site_prefs[p]);
    }
  }
}

TEST_F(IncrementalInvarianceTest, PeerOverlaysMatchClassicBaseline) {
  // One-pass peer incorporation: the incremental baseline census is the
  // empty-delta overlay with the classic nonce, so the baseline mean and
  // the greedy selection must agree with the classic path's on the same
  // deployment (the per-peer censuses use tagged nonces and may differ in
  // noise, but the baseline itself is bit-identical).
  const Orchestrator& orch = *env().orchestrator;
  anycast::AnycastConfig baseline;
  baseline.announce_order = {SiteId{0}, SiteId{1}};

  const core::OnePassPeerSelector classic(orch, {});
  core::OnePassOptions incremental_options;
  incremental_options.incremental = true;
  const core::OnePassPeerSelector incremental(orch, incremental_options);

  const core::OnePassResult a = classic.run(baseline);
  const core::OnePassResult b = incremental.run(baseline);
  ASSERT_EQ(a.baseline_mean_rtt, b.baseline_mean_rtt)
      << "empty-delta overlay must reproduce the classic baseline census";
  EXPECT_EQ(a.experiments, b.experiments);
  EXPECT_EQ(a.peers.size(), b.peers.size());
}

}  // namespace
}  // namespace anyopt::measure
