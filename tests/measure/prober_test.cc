#include "measure/prober.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace anyopt::measure {
namespace {

TEST(Prober, NoLossNoJitterReturnsTruth) {
  ProbeModel model;
  model.loss_rate = 0;
  model.jitter_frac = 0;
  model.jitter_floor_ms = 0;
  model.spike_prob = 0;
  Prober p{model, Rng{1}};
  const auto m = p.measure(42.0);
  ASSERT_TRUE(m.has_value());
  EXPECT_NEAR(*m, 42.0, 1e-9);
}

TEST(Prober, TotalLossReturnsNothing) {
  ProbeModel model;
  model.loss_rate = 1.0;
  Prober p{model, Rng{2}};
  EXPECT_FALSE(p.measure(42.0).has_value());
}

TEST(Prober, MedianSuppressesSpikes) {
  ProbeModel model;
  model.loss_rate = 0;
  model.jitter_frac = 0.01;
  model.spike_prob = 0.15;  // frequent spikes, but < half of probes
  model.spike_ms = 500;
  model.repeats = 7;
  Prober p{model, Rng{3}};
  int close = 0;
  constexpr int kRounds = 200;
  for (int i = 0; i < kRounds; ++i) {
    const auto m = p.measure(30.0);
    ASSERT_TRUE(m.has_value());
    if (std::abs(*m - 30.0) < 3.0) ++close;
  }
  EXPECT_GT(close, kRounds * 9 / 10);
}

TEST(Prober, RequiresMinimumValidResponses) {
  ProbeModel model;
  model.loss_rate = 0.8;
  model.repeats = 7;
  model.min_valid = 3;
  Prober p{model, Rng{4}};
  int failures = 0;
  for (int i = 0; i < 300; ++i) {
    if (!p.measure(10.0).has_value()) ++failures;
  }
  // With 80% loss, usually fewer than 3 of 7 survive.
  EXPECT_GT(failures, 150);
}

TEST(Prober, HighLossStillSamplesWithThreeValid) {
  // The paper: "If the link experiences high packet loss rates, we can
  // still sample a median RTT from at least three valid responses."
  ProbeModel model;
  model.loss_rate = 0.5;
  model.jitter_frac = 0.0;
  model.jitter_floor_ms = 0.0;
  model.spike_prob = 0.0;
  model.repeats = 7;
  model.min_valid = 3;
  Prober p{model, Rng{5}};
  int successes = 0;
  for (int i = 0; i < 300; ++i) {
    if (const auto m = p.measure(20.0)) {
      EXPECT_NEAR(*m, 20.0, 1e-6);
      ++successes;
    }
  }
  EXPECT_GT(successes, 150);
}

TEST(Prober, SamplesAreNeverNegative) {
  ProbeModel model;
  model.jitter_floor_ms = 5.0;
  model.jitter_frac = 2.0;  // absurd jitter to stress the floor
  Prober p{model, Rng{6}};
  for (int i = 0; i < 1000; ++i) {
    if (const auto s = p.probe_once(0.1)) EXPECT_GT(*s, 0.0);
  }
}

TEST(Prober, NegativeJitterDrawsAreNotPinnedAtClamp) {
  // Regression: the multiplicative jitter factor 1 + frac*N(0,1) used to go
  // negative on large negative draws, and the 0.05 ms output clamp silently
  // pinned those samples — with jitter_frac = 1.5 about a quarter of all
  // probes, dragging the whole low end of the distribution onto the clamp.
  // The factor is now resampled from the truncated normal, so pinning is a
  // measure-zero event and the median stays in the body of the
  // distribution.
  ProbeModel model;
  model.loss_rate = 0;
  model.jitter_frac = 1.5;
  model.jitter_floor_ms = 0;
  model.spike_prob = 0;
  Prober p{model, Rng{0xFACE}};
  constexpr int kProbes = 20000;
  constexpr double kTrueRtt = 20.0;
  std::vector<double> samples;
  samples.reserve(kProbes);
  for (int i = 0; i < kProbes; ++i) {
    const auto s = p.probe_once(kTrueRtt);
    ASSERT_TRUE(s.has_value());
    samples.push_back(*s);
  }
  int pinned = 0;
  for (const double s : samples) {
    EXPECT_GE(s, 0.05);
    if (s <= 0.05) ++pinned;
  }
  // P(1 + 1.5*N < 0) ~ 25%: the old code pinned ~5000 of 20000 samples.
  EXPECT_LT(pinned, kProbes / 100);
  // And the median must sit near the true RTT, not be dragged down by a
  // pinned-at-clamp mass (median of the truncated distribution is slightly
  // above 1x because the negative tail is redistributed).
  std::nth_element(samples.begin(), samples.begin() + kProbes / 2,
                   samples.end());
  EXPECT_GT(samples[kProbes / 2], 0.6 * kTrueRtt);
}

TEST(Prober, DefaultJitterStreamUnchangedByResampling) {
  // The resampling loop must not fire at the default jitter_frac (a
  // negative factor there is a 50-sigma event), so the noise stream — and
  // every historical census — is unchanged.  Golden check: factor draws at
  // default settings equal the raw (non-resampled) computation.
  ProbeModel model;
  model.loss_rate = 0;
  model.jitter_floor_ms = 0;
  model.spike_prob = 0;
  Prober p{model, Rng{42}};
  // Mirror probe_once draw for draw, WITHOUT the resampling loop.  If the
  // loop ever fired at the default jitter_frac the two streams would
  // diverge and the exact comparison below would fail.
  Rng reference{42};
  for (int i = 0; i < 200; ++i) {
    const auto s = p.probe_once(25.0);
    ASSERT_TRUE(s.has_value());
    (void)reference.chance(model.loss_rate);  // loss draw (never fires)
    double expect = 25.0 * (1.0 + model.jitter_frac * reference.normal());
    expect += model.jitter_floor_ms * std::abs(reference.normal());
    (void)reference.chance(model.spike_prob);  // spike draw (never fires)
    EXPECT_DOUBLE_EQ(*s, std::max(0.05, expect));
  }
}

TEST(Prober, DeterministicForSeed) {
  ProbeModel model;
  Prober a{model, Rng{7}};
  Prober b{model, Rng{7}};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.measure(33.0), b.measure(33.0));
  }
}

}  // namespace
}  // namespace anyopt::measure
