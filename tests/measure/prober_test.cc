#include "measure/prober.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace anyopt::measure {
namespace {

TEST(Prober, NoLossNoJitterReturnsTruth) {
  ProbeModel model;
  model.loss_rate = 0;
  model.jitter_frac = 0;
  model.jitter_floor_ms = 0;
  model.spike_prob = 0;
  Prober p{model, Rng{1}};
  const auto m = p.measure(42.0);
  ASSERT_TRUE(m.has_value());
  EXPECT_NEAR(*m, 42.0, 1e-9);
}

TEST(Prober, TotalLossReturnsNothing) {
  ProbeModel model;
  model.loss_rate = 1.0;
  Prober p{model, Rng{2}};
  EXPECT_FALSE(p.measure(42.0).has_value());
}

TEST(Prober, MedianSuppressesSpikes) {
  ProbeModel model;
  model.loss_rate = 0;
  model.jitter_frac = 0.01;
  model.spike_prob = 0.15;  // frequent spikes, but < half of probes
  model.spike_ms = 500;
  model.repeats = 7;
  Prober p{model, Rng{3}};
  int close = 0;
  constexpr int kRounds = 200;
  for (int i = 0; i < kRounds; ++i) {
    const auto m = p.measure(30.0);
    ASSERT_TRUE(m.has_value());
    if (std::abs(*m - 30.0) < 3.0) ++close;
  }
  EXPECT_GT(close, kRounds * 9 / 10);
}

TEST(Prober, RequiresMinimumValidResponses) {
  ProbeModel model;
  model.loss_rate = 0.8;
  model.repeats = 7;
  model.min_valid = 3;
  Prober p{model, Rng{4}};
  int failures = 0;
  for (int i = 0; i < 300; ++i) {
    if (!p.measure(10.0).has_value()) ++failures;
  }
  // With 80% loss, usually fewer than 3 of 7 survive.
  EXPECT_GT(failures, 150);
}

TEST(Prober, HighLossStillSamplesWithThreeValid) {
  // The paper: "If the link experiences high packet loss rates, we can
  // still sample a median RTT from at least three valid responses."
  ProbeModel model;
  model.loss_rate = 0.5;
  model.jitter_frac = 0.0;
  model.jitter_floor_ms = 0.0;
  model.spike_prob = 0.0;
  model.repeats = 7;
  model.min_valid = 3;
  Prober p{model, Rng{5}};
  int successes = 0;
  for (int i = 0; i < 300; ++i) {
    if (const auto m = p.measure(20.0)) {
      EXPECT_NEAR(*m, 20.0, 1e-6);
      ++successes;
    }
  }
  EXPECT_GT(successes, 150);
}

TEST(Prober, SamplesAreNeverNegative) {
  ProbeModel model;
  model.jitter_floor_ms = 5.0;
  model.jitter_frac = 2.0;  // absurd jitter to stress the floor
  Prober p{model, Rng{6}};
  for (int i = 0; i < 1000; ++i) {
    if (const auto s = p.probe_once(0.1)) EXPECT_GT(*s, 0.0);
  }
}

TEST(Prober, NegativeJitterDrawsAreNotPinnedAtClamp) {
  // Regression: the multiplicative jitter factor 1 + frac*N(0,1) used to go
  // negative on large negative draws, and the 0.05 ms output clamp silently
  // pinned those samples — with jitter_frac = 1.5 about a quarter of all
  // probes, dragging the whole low end of the distribution onto the clamp.
  // The factor is now resampled from the truncated normal, so pinning is a
  // measure-zero event and the median stays in the body of the
  // distribution.
  ProbeModel model;
  model.loss_rate = 0;
  model.jitter_frac = 1.5;
  model.jitter_floor_ms = 0;
  model.spike_prob = 0;
  Prober p{model, Rng{0xFACE}};
  constexpr int kProbes = 20000;
  constexpr double kTrueRtt = 20.0;
  std::vector<double> samples;
  samples.reserve(kProbes);
  for (int i = 0; i < kProbes; ++i) {
    const auto s = p.probe_once(kTrueRtt);
    ASSERT_TRUE(s.has_value());
    samples.push_back(*s);
  }
  int pinned = 0;
  for (const double s : samples) {
    EXPECT_GE(s, 0.05);
    if (s <= 0.05) ++pinned;
  }
  // P(1 + 1.5*N < 0) ~ 25%: the old code pinned ~5000 of 20000 samples.
  EXPECT_LT(pinned, kProbes / 100);
  // And the median must sit near the true RTT, not be dragged down by a
  // pinned-at-clamp mass (median of the truncated distribution is slightly
  // above 1x because the negative tail is redistributed).
  std::nth_element(samples.begin(), samples.begin() + kProbes / 2,
                   samples.end());
  EXPECT_GT(samples[kProbes / 2], 0.6 * kTrueRtt);
}

TEST(Prober, DefaultJitterStreamUnchangedByResampling) {
  // The resampling loop must not fire at the default jitter_frac (a
  // negative factor there is a 50-sigma event), so the noise stream — and
  // every historical census — is unchanged.  Golden check: factor draws at
  // default settings equal the raw (non-resampled) computation.
  ProbeModel model;
  model.loss_rate = 0;
  model.jitter_floor_ms = 0;
  model.spike_prob = 0;
  Prober p{model, Rng{42}};
  // Mirror probe_once draw for draw, WITHOUT the resampling loop.  If the
  // loop ever fired at the default jitter_frac the two streams would
  // diverge and the exact comparison below would fail.
  Rng reference{42};
  for (int i = 0; i < 200; ++i) {
    const auto s = p.probe_once(25.0);
    ASSERT_TRUE(s.has_value());
    (void)reference.chance(model.loss_rate);  // loss draw (never fires)
    double expect = 25.0 * (1.0 + model.jitter_frac * reference.normal());
    expect += model.jitter_floor_ms * std::abs(reference.normal());
    (void)reference.chance(model.spike_prob);  // spike draw (never fires)
    EXPECT_DOUBLE_EQ(*s, std::max(0.05, expect));
  }
}

TEST(Prober, MinValidContractIsNotAllProbesLost) {
  // The nullopt contract (documented on measure()): nullopt means "fewer
  // than min_valid responses", NOT "every probe lost".  Provable with
  // repeats < min_valid and zero loss: every probe answers, yet the
  // measurement is still unusable.
  ProbeModel model;
  model.loss_rate = 0.0;
  model.repeats = 2;
  model.min_valid = 3;
  Prober p{model, Rng{8}};
  EXPECT_FALSE(p.measure(15.0).has_value());
  EXPECT_EQ(p.probes_lost(), 0u);
  EXPECT_EQ(p.probes_sent(), 2u);
}

TEST(Prober, RetriesExhaustWithExponentialBackoff) {
  ProbeModel model;
  model.loss_rate = 1.0;
  model.max_retries = 3;
  model.backoff_base_ms = 100.0;
  Prober p{model, Rng{9}};
  EXPECT_FALSE(p.measure(10.0).has_value());
  EXPECT_EQ(p.retries(), 3u);
  // Waits of 100, 200, 400 ms before retries 1, 2, 3.
  EXPECT_DOUBLE_EQ(p.backoff_ms(), 700.0);
  EXPECT_EQ(p.probes_sent(), static_cast<std::uint64_t>(4 * model.repeats));
}

TEST(Prober, AbsurdRetryCountsKeepBackoffFiniteAndDefined) {
  // Regression (UBSan): the backoff doubling used `1 << (attempt - 1)`,
  // which is undefined for attempt >= 65 (shift past the width of the
  // 64-bit operand) — an operator configuring an absurd max_retries got
  // nasal demons instead of a saturated wait.  The shift now caps at 63;
  // every attempt past the 64th contributes the same (huge but finite and
  // well-defined) wait.  Run under the ubsan suite, this test also fails
  // on any reintroduced shift overflow.
  ProbeModel model;
  model.loss_rate = 1.0;
  model.max_retries = 200;
  model.round_loss_budget = 1.1;  // never stop early
  model.backoff_base_ms = 1.0;
  Prober p{model, Rng{14}};
  EXPECT_FALSE(p.measure(10.0).has_value());
  EXPECT_EQ(p.retries(), 200u);
  EXPECT_TRUE(std::isfinite(p.backoff_ms()));
  // Attempts 1..64 double the wait (2^0..2^63); attempts 65..200 each add
  // the capped 2^63 term.  Fold in the prober's own accumulation order so
  // the comparison is bit-exact.
  double expected = 0.0;
  for (int attempt = 1; attempt <= 200; ++attempt) {
    expected += static_cast<double>(std::uint64_t{1}
                                    << std::min(attempt - 1, 63));
  }
  EXPECT_DOUBLE_EQ(p.backoff_ms(), expected);
}

TEST(Prober, BackoffBelowShiftCapMatchesClassicDoubling) {
  // The cap must be invisible for sane retry counts: 1, 2, 4, ... exact.
  ProbeModel model;
  model.loss_rate = 1.0;
  model.max_retries = 10;
  model.round_loss_budget = 1.1;
  model.backoff_base_ms = 1.0;
  Prober p{model, Rng{15}};
  EXPECT_FALSE(p.measure(10.0).has_value());
  EXPECT_DOUBLE_EQ(p.backoff_ms(), 1023.0);  // 2^10 - 1
}

TEST(Prober, LossBudgetStopsRetriesEarly) {
  // With everything lost, the first round already exceeds a 0.5 budget, so
  // no retry is attempted despite max_retries allowing five.
  ProbeModel model;
  model.loss_rate = 1.0;
  model.max_retries = 5;
  model.round_loss_budget = 0.5;
  Prober p{model, Rng{10}};
  EXPECT_FALSE(p.measure(10.0).has_value());
  EXPECT_EQ(p.retries(), 0u);
  EXPECT_EQ(p.probes_sent(), static_cast<std::uint64_t>(model.repeats));
}

TEST(Prober, RetriesRecoverLossyTargets) {
  ProbeModel model;
  model.loss_rate = 0.8;
  model.repeats = 7;
  model.min_valid = 3;
  Prober fragile{model, Rng{11}};
  model.max_retries = 6;
  Prober resilient{model, Rng{11}};
  int fragile_ok = 0;
  int resilient_ok = 0;
  for (int i = 0; i < 200; ++i) {
    if (fragile.measure(10.0).has_value()) ++fragile_ok;
    if (resilient.measure(10.0).has_value()) ++resilient_ok;
  }
  EXPECT_GT(resilient_ok, fragile_ok * 2);
  EXPECT_GT(resilient.retries(), 0u);
  EXPECT_GT(resilient.backoff_ms(), 0.0);
}

TEST(Prober, ZeroExtraLossLeavesTheStreamUntouched) {
  // Injected loss is unioned into the base rate as p + e - p*e in a single
  // Bernoulli draw, so e = 0 reproduces the historic stream bit for bit.
  ProbeModel model;
  Prober implicit_arg{model, Rng{12}};
  Prober explicit_zero{model, Rng{12}};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(implicit_arg.measure(33.0), explicit_zero.measure(33.0, 0.0));
  }
}

TEST(Prober, FullExtraLossDropsEverything) {
  ProbeModel model;
  model.loss_rate = 0.0;
  Prober p{model, Rng{13}};
  EXPECT_FALSE(p.measure(10.0, 1.0).has_value());
  EXPECT_EQ(p.probes_lost(), p.probes_sent());
}

TEST(Prober, DeterministicForSeed) {
  ProbeModel model;
  Prober a{model, Rng{7}};
  Prober b{model, Rng{7}};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.measure(33.0), b.measure(33.0));
  }
}

}  // namespace
}  // namespace anyopt::measure
