#include "measure/prober.h"

#include <gtest/gtest.h>

namespace anyopt::measure {
namespace {

TEST(Prober, NoLossNoJitterReturnsTruth) {
  ProbeModel model;
  model.loss_rate = 0;
  model.jitter_frac = 0;
  model.jitter_floor_ms = 0;
  model.spike_prob = 0;
  Prober p{model, Rng{1}};
  const auto m = p.measure(42.0);
  ASSERT_TRUE(m.has_value());
  EXPECT_NEAR(*m, 42.0, 1e-9);
}

TEST(Prober, TotalLossReturnsNothing) {
  ProbeModel model;
  model.loss_rate = 1.0;
  Prober p{model, Rng{2}};
  EXPECT_FALSE(p.measure(42.0).has_value());
}

TEST(Prober, MedianSuppressesSpikes) {
  ProbeModel model;
  model.loss_rate = 0;
  model.jitter_frac = 0.01;
  model.spike_prob = 0.15;  // frequent spikes, but < half of probes
  model.spike_ms = 500;
  model.repeats = 7;
  Prober p{model, Rng{3}};
  int close = 0;
  constexpr int kRounds = 200;
  for (int i = 0; i < kRounds; ++i) {
    const auto m = p.measure(30.0);
    ASSERT_TRUE(m.has_value());
    if (std::abs(*m - 30.0) < 3.0) ++close;
  }
  EXPECT_GT(close, kRounds * 9 / 10);
}

TEST(Prober, RequiresMinimumValidResponses) {
  ProbeModel model;
  model.loss_rate = 0.8;
  model.repeats = 7;
  model.min_valid = 3;
  Prober p{model, Rng{4}};
  int failures = 0;
  for (int i = 0; i < 300; ++i) {
    if (!p.measure(10.0).has_value()) ++failures;
  }
  // With 80% loss, usually fewer than 3 of 7 survive.
  EXPECT_GT(failures, 150);
}

TEST(Prober, HighLossStillSamplesWithThreeValid) {
  // The paper: "If the link experiences high packet loss rates, we can
  // still sample a median RTT from at least three valid responses."
  ProbeModel model;
  model.loss_rate = 0.5;
  model.jitter_frac = 0.0;
  model.jitter_floor_ms = 0.0;
  model.spike_prob = 0.0;
  model.repeats = 7;
  model.min_valid = 3;
  Prober p{model, Rng{5}};
  int successes = 0;
  for (int i = 0; i < 300; ++i) {
    if (const auto m = p.measure(20.0)) {
      EXPECT_NEAR(*m, 20.0, 1e-6);
      ++successes;
    }
  }
  EXPECT_GT(successes, 150);
}

TEST(Prober, SamplesAreNeverNegative) {
  ProbeModel model;
  model.jitter_floor_ms = 5.0;
  model.jitter_frac = 2.0;  // absurd jitter to stress the floor
  Prober p{model, Rng{6}};
  for (int i = 0; i < 1000; ++i) {
    if (const auto s = p.probe_once(0.1)) EXPECT_GT(*s, 0.0);
  }
}

TEST(Prober, DeterministicForSeed) {
  ProbeModel model;
  Prober a{model, Rng{7}};
  Prober b{model, Rng{7}};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.measure(33.0), b.measure(33.0));
  }
}

}  // namespace
}  // namespace anyopt::measure
