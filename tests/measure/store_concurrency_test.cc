// Concurrent access to one ResultStore: parallel campaign workers flush
// and replay through a shared store without races (run under
// -DANYOPT_SANITIZE=thread via the `tsan` ctest label) and without
// changing a single result bit.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "anycast/world.h"
#include "measure/campaign_runner.h"
#include "measure/store.h"
#include "netbase/rng.h"
#include "topo/serialize.h"

namespace anyopt::measure {
namespace {

const anycast::World& world() {
  static auto w = anycast::World::create(anycast::WorldParams::test_scale(47));
  return *w;
}

std::uint64_t world_fingerprint() {
  static const std::uint64_t fp =
      topo::topology_fingerprint(world().internet());
  return fp;
}

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path(::testing::TempDir() + "anyopt_store_conc_" + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
  TempFile(const TempFile&) = delete;
  TempFile& operator=(const TempFile&) = delete;
};

std::vector<ExperimentSpec> make_specs(std::uint64_t salt,
                                       std::size_t count) {
  std::vector<ExperimentSpec> specs;
  const std::size_t sites = world().deployment().site_count();
  for (std::size_t i = 0; i < count; ++i) {
    ExperimentSpec spec;
    spec.config.announce_order = {
        SiteId{static_cast<SiteId::underlying_type>(i % sites)},
        SiteId{static_cast<SiteId::underlying_type>((i + 1 + i / sites) %
                                                    sites)}};
    if (spec.config.announce_order[0] == spec.config.announce_order[1]) {
      spec.config.announce_order.pop_back();
    }
    spec.config.spacing_s = (i % 2 == 0) ? 360.0 : 0.0;
    spec.nonce = mix64(salt, i);
    spec.ordinal = i;
    specs.push_back(std::move(spec));
  }
  return specs;
}

void expect_batches_eq(const std::vector<Census>& a,
                       const std::vector<Census>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].site_of_target, b[i].site_of_target) << "spec " << i;
    EXPECT_EQ(a[i].attachment_of_target, b[i].attachment_of_target);
    EXPECT_EQ(a[i].rtt_ms, b[i].rtt_ms);
  }
}

TEST(StoreConcurrency, ParallelWorkersShareOneStoreBitIdentically) {
  TempFile f("parallel");
  const Orchestrator orchestrator(world());
  const auto specs = make_specs(0x5703E, 16);
  const CampaignRunner serial(orchestrator, {.threads = 1});
  const std::vector<Census> reference = serial.run(specs);

  auto store = ResultStore::open(f.path, world_fingerprint());
  ASSERT_TRUE(store.ok()) << store.error().message;
  const CampaignRunner parallel_cold(
      orchestrator, {.threads = 4, .store = store.value().get()});
  expect_batches_eq(parallel_cold.run(specs), reference);
  EXPECT_EQ(store.value()->size(), specs.size());

  // Reopen and replay on four workers: concurrent hits, no simulations.
  store = ResultStore::open(f.path, world_fingerprint());
  ASSERT_TRUE(store.ok()) << store.error().message;
  const CampaignRunner parallel_warm(
      orchestrator, {.threads = 4, .store = store.value().get()});
  expect_batches_eq(parallel_warm.run(specs), reference);
  EXPECT_EQ(store.value()->size(), specs.size());
}

TEST(StoreConcurrency, MixedHitsAndMissesStayExact) {
  // Warm half the keys, then run the full batch in parallel: workers mix
  // store replays and fresh simulations (with concurrent appends).
  TempFile f("mixed");
  const Orchestrator orchestrator(world());
  const auto specs = make_specs(0x417ED, 14);
  const CampaignRunner serial(orchestrator, {.threads = 1});
  const std::vector<Census> reference = serial.run(specs);

  auto store = ResultStore::open(f.path, world_fingerprint());
  ASSERT_TRUE(store.ok());
  const std::vector<ExperimentSpec> first_half(specs.begin(),
                                               specs.begin() + 7);
  const CampaignRunner warmup(orchestrator,
                              {.threads = 2, .store = store.value().get()});
  (void)warmup.run(first_half);
  EXPECT_EQ(store.value()->size(), first_half.size());

  const CampaignRunner full(orchestrator,
                            {.threads = 4, .store = store.value().get()});
  expect_batches_eq(full.run(specs), reference);
  EXPECT_EQ(store.value()->size(), specs.size());
}

TEST(StoreConcurrency, IndependentRunnersAppendConcurrently) {
  // Two campaign engines (each with its own worker pool) write disjoint
  // batches into one store from two host threads at once.
  TempFile f("two_runners");
  const Orchestrator orchestrator(world());
  const auto batch_a = make_specs(0xAAAA, 10);
  const auto batch_b = make_specs(0xBBBB, 10);
  auto store = ResultStore::open(f.path, world_fingerprint());
  ASSERT_TRUE(store.ok());

  std::vector<Census> got_a;
  std::vector<Census> got_b;
  {
    const CampaignRunner runner_a(orchestrator,
                                  {.threads = 2, .store = store.value().get()});
    const CampaignRunner runner_b(orchestrator,
                                  {.threads = 2, .store = store.value().get()});
    std::thread ta([&] { got_a = runner_a.run(batch_a); });
    std::thread tb([&] { got_b = runner_b.run(batch_b); });
    ta.join();
    tb.join();
  }
  EXPECT_EQ(store.value()->size(), batch_a.size() + batch_b.size());

  const CampaignRunner serial(orchestrator, {.threads = 1});
  expect_batches_eq(got_a, serial.run(batch_a));
  expect_batches_eq(got_b, serial.run(batch_b));

  // Everything both runners flushed is replayable after a reopen.
  store = ResultStore::open(f.path, world_fingerprint());
  ASSERT_TRUE(store.ok());
  for (const auto& specs : {batch_a, batch_b}) {
    for (const ExperimentSpec& spec : specs) {
      const std::uint64_t key =
          ResultStore::census_key(spec.config, spec.nonce);
      EXPECT_TRUE(store.value()->find_census(key).has_value());
    }
  }
}

}  // namespace
}  // namespace anyopt::measure
