#include "measure/store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "anycast/world.h"
#include "core/anyopt.h"
#include "core/discovery.h"
#include "core/rtt_matrix.h"
#include "core/store_io.h"
#include "measure/campaign_runner.h"
#include "netbase/fault.h"
#include "netbase/rng.h"
#include "netbase/telemetry.h"
#include "topo/serialize.h"

#ifdef ANYOPT_STORE_CLI
#include <cstdlib>
#include <sys/wait.h>
#endif

namespace anyopt::measure {
namespace {

// ---------------------------------------------------------------- fixtures

const anycast::World& world() {
  static auto w = anycast::World::create(anycast::WorldParams::test_scale(71));
  return *w;
}

std::uint64_t world_fingerprint() {
  static const std::uint64_t fp =
      topo::topology_fingerprint(world().internet());
  return fp;
}

const Orchestrator& orchestrator() {
  static const Orchestrator orch(world());
  return orch;
}

/// Self-cleaning store path under the test temp dir.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path(::testing::TempDir() + "anyopt_store_test_" + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
  TempFile(const TempFile&) = delete;
  TempFile& operator=(const TempFile&) = delete;
};

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::uint64_t store_hits() {
  return telemetry::Registry::global().counter_value("store.hits");
}

/// A deterministic synthetic census: mixed reachable/unreachable targets.
Census make_census(std::uint64_t seed, std::size_t targets) {
  Rng rng(seed);
  Census c;
  c.site_of_target.reserve(targets);
  c.attachment_of_target.reserve(targets);
  c.rtt_ms.reserve(targets);
  for (std::size_t t = 0; t < targets; ++t) {
    if (rng.below(8) == 0) {  // unreachable target
      c.site_of_target.push_back(SiteId{});
      c.attachment_of_target.push_back(bgp::kNoAttachment);
      c.rtt_ms.push_back(-1.0);
    } else {
      c.site_of_target.push_back(
          SiteId{static_cast<SiteId::underlying_type>(rng.below(6))});
      c.attachment_of_target.push_back(
          static_cast<bgp::AttachmentIndex>(rng.below(4)));
      c.rtt_ms.push_back(
          static_cast<double>(rng.uniform_int(1000, 300000)) / 1000.0);
    }
  }
  return c;
}

/// find_census that degrades to an empty census (and a test failure)
/// instead of UB when the key is missing.
Census fetch(const ResultStore& store, std::uint64_t key) {
  const auto found = store.find_census(key);
  EXPECT_TRUE(found.has_value()) << "store miss for key " << key;
  return found.value_or(Census{});
}

void expect_census_eq(const Census& a, const Census& b,
                      const std::string& what) {
  EXPECT_EQ(a.site_of_target, b.site_of_target) << what;
  EXPECT_EQ(a.attachment_of_target, b.attachment_of_target) << what;
  EXPECT_EQ(a.rtt_ms, b.rtt_ms) << what;  // exact double equality intended
}

void expect_tables_eq(const core::PairwiseTable& a,
                      const core::PairwiseTable& b, const std::string& what) {
  EXPECT_EQ(a.item_count, b.item_count) << what;
  EXPECT_EQ(a.target_count, b.target_count) << what;
  EXPECT_EQ(a.outcome, b.outcome) << what;
}

void expect_discovery_eq(const core::DiscoveryResult& a,
                         const core::DiscoveryResult& b,
                         const std::string& what) {
  expect_tables_eq(a.provider_prefs, b.provider_prefs, what + " providers");
  ASSERT_EQ(a.site_prefs.size(), b.site_prefs.size()) << what;
  for (std::size_t p = 0; p < a.site_prefs.size(); ++p) {
    expect_tables_eq(a.site_prefs[p], b.site_prefs[p],
                     what + " provider " + std::to_string(p));
  }
  EXPECT_EQ(a.provider_sites, b.provider_sites) << what;
}

// ----------------------------------------------------------- round trips

TEST(ResultStore, CensusRoundTripAcrossReopen) {
  TempFile f("roundtrip");
  const Census a = make_census(1, 60);
  const Census b = make_census(2, 60);
  Census empty;  // a lost round: zero targets measured
  empty.site_of_target.assign(60, SiteId{});
  empty.attachment_of_target.assign(60, bgp::kNoAttachment);
  empty.rtt_ms.assign(60, -1.0);
  {
    auto store = ResultStore::open(f.path, world_fingerprint());
    ASSERT_TRUE(store.ok()) << store.error().message;
    ASSERT_TRUE(store.value()->put_census(10, a).ok());
    ASSERT_TRUE(store.value()->put_census(20, b).ok());
    ASSERT_TRUE(store.value()->put_census(30, empty).ok());
    // Same-session lookups come from the in-memory mirror.
    const auto found = store.value()->find_census(20);
    ASSERT_TRUE(found.has_value());
    expect_census_eq(*found, b, "same session");
  }
  auto store = ResultStore::open(f.path, world_fingerprint());
  ASSERT_TRUE(store.ok()) << store.error().message;
  EXPECT_EQ(store.value()->size(), 3u);
  EXPECT_EQ(store.value()->recovered_tail_bytes(), 0u);
  const auto ra = store.value()->find_census(10);
  const auto rb = store.value()->find_census(20);
  const auto re = store.value()->find_census(30);
  ASSERT_TRUE(ra.has_value() && rb.has_value() && re.has_value());
  expect_census_eq(*ra, a, "census a");
  expect_census_eq(*rb, b, "census b");
  expect_census_eq(*re, empty, "empty census");
  EXPECT_FALSE(store.value()->find_census(99).has_value());
}

TEST(ResultStore, RttRowAndOpaquePayloadRoundTrip) {
  TempFile f("rows");
  const std::vector<double> row = {1.5, -1.0, 203.25, 0.125};
  codec::Writer body;
  body.put_varint(42);
  body.put_string("opaque table bytes");
  {
    auto store = ResultStore::open(f.path, world_fingerprint());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value()->put_rtt_row(7, row).ok());
    ASSERT_TRUE(store.value()->put_payload(RecordKind::kTable, 8, body).ok());
  }
  auto store = ResultStore::open(f.path, world_fingerprint());
  ASSERT_TRUE(store.ok());
  const auto got_row = store.value()->find_rtt_row(7);
  ASSERT_TRUE(got_row.has_value());
  EXPECT_EQ(*got_row, row);
  const auto got_body = store.value()->find_payload(RecordKind::kTable, 8);
  ASSERT_TRUE(got_body.has_value());
  EXPECT_EQ(*got_body, std::vector<std::uint8_t>(body.bytes().begin(),
                                                 body.bytes().end()));
  // Keys are per-kind: the rtt-row key does not alias the table key.
  EXPECT_FALSE(store.value()->find_payload(RecordKind::kTable, 7).has_value());
  EXPECT_FALSE(store.value()->find_rtt_row(8).has_value());
}

TEST(ResultStore, RePutSupersedesAndLatestWins) {
  TempFile f("supersede");
  const Census first = make_census(3, 40);
  const Census second = make_census(4, 40);
  {
    auto store = ResultStore::open(f.path, world_fingerprint());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value()->put_census(5, first).ok());
    ASSERT_TRUE(store.value()->put_census(5, second).ok());
    EXPECT_EQ(store.value()->size(), 1u);          // one live key
    EXPECT_EQ(store.value()->records().size(), 2u);  // both in the log
  }
  auto store = ResultStore::open(f.path, world_fingerprint());
  ASSERT_TRUE(store.ok());
  const auto found = store.value()->find_census(5);
  ASSERT_TRUE(found.has_value());
  expect_census_eq(*found, second, "latest record wins");
}

TEST(ResultStore, DeltaEncodingShrinksSimilarCensuses) {
  TempFile f("delta");
  const std::size_t targets = 200;
  const Census base = make_census(10, targets);
  Census similar = base;  // catchments barely move between experiments
  similar.site_of_target[3] = SiteId{5};
  similar.site_of_target[90] = SiteId{0};
  for (double& rtt : similar.rtt_ms) {
    if (rtt >= 0) rtt += 0.001;  // probe noise always differs
  }
  Census reshuffled = base;  // every catchment changed: delta cannot pay
  for (auto& site : reshuffled.site_of_target) {
    site = SiteId{static_cast<SiteId::underlying_type>(
        site.valid() ? site.value() + 1 : 2)};
  }
  auto store = ResultStore::open(f.path, world_fingerprint());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value()->put_census(1, base).ok());
  ASSERT_TRUE(store.value()->put_census(2, similar).ok());
  ASSERT_TRUE(store.value()->put_census(3, reshuffled).ok());
  const auto records = store.value()->records();
  ASSERT_EQ(records.size(), 3u);
  // The similar census persists only its two catchment changes (plus its
  // RTTs); the base and the fully reshuffled census pay full price.
  EXPECT_LT(records[1].payload_bytes, records[0].payload_bytes - targets / 2);
  EXPECT_GT(records[2].payload_bytes, records[1].payload_bytes);
  // Compression never costs fidelity — all three decode bit-exactly,
  // including after a reopen (which re-derives the delta base from the log).
  store = ResultStore::open(f.path, world_fingerprint());
  ASSERT_TRUE(store.ok());
  expect_census_eq(fetch(*store.value(), 1), base, "base");
  expect_census_eq(fetch(*store.value(), 2), similar, "delta");
  expect_census_eq(fetch(*store.value(), 3), reshuffled, "full");
}

// ------------------------------------------------------ corruption safety

TEST(ResultStore, FingerprintMismatchIsAnError) {
  TempFile f("fingerprint");
  {
    auto store = ResultStore::open(f.path, 0x1111);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value()->put_census(1, make_census(1, 10)).ok());
  }
  const auto wrong = ResultStore::open(f.path, 0x2222);
  ASSERT_FALSE(wrong.ok());
  EXPECT_NE(wrong.error().message.find("fingerprint"), std::string::npos)
      << wrong.error().message;
  // The CLI's open mode adopts whatever the header says.
  const auto adopted = ResultStore::open_existing(f.path);
  ASSERT_TRUE(adopted.ok()) << adopted.error().message;
  EXPECT_EQ(adopted.value()->fingerprint(), 0x1111u);
}

TEST(ResultStore, TornTailIsRecoveredKeepingCompleteRecords) {
  TempFile f("torn");
  std::vector<std::size_t> offsets;
  {
    auto store = ResultStore::open(f.path, world_fingerprint());
    ASSERT_TRUE(store.ok());
    for (std::uint64_t k = 1; k <= 3; ++k) {
      ASSERT_TRUE(store.value()->put_census(k, make_census(k, 30)).ok());
    }
    for (const RecordInfo& info : store.value()->records()) {
      offsets.push_back(info.offset);
    }
  }
  // Crash mid-append: cut into the third record's frame.
  std::filesystem::resize_file(f.path, offsets[2] + 3);
  // verify reports the damage rather than repairing it...
  const auto report = ResultStore::verify_file(f.path);
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_FALSE(report.value().clean());
  EXPECT_EQ(report.value().records, 2u);
  EXPECT_EQ(report.value().torn_tail_bytes, 3u);
  // ...while open truncates the torn tail and keeps every complete record.
  auto store = ResultStore::open(f.path, world_fingerprint());
  ASSERT_TRUE(store.ok()) << store.error().message;
  EXPECT_EQ(store.value()->recovered_tail_bytes(), 3u);
  EXPECT_EQ(store.value()->size(), 2u);
  expect_census_eq(fetch(*store.value(), 1), make_census(1, 30),
                   "survivor 1");
  expect_census_eq(fetch(*store.value(), 2), make_census(2, 30),
                   "survivor 2");
  EXPECT_FALSE(store.value()->find_census(3).has_value());
  // Recovery rewrote the file on a record boundary: appending still works
  // and the file now verifies clean.
  ASSERT_TRUE(store.value()->put_census(4, make_census(4, 30)).ok());
  const auto after = ResultStore::verify_file(f.path);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().clean());
  EXPECT_EQ(after.value().records, 3u);
}

TEST(ResultStore, MidFileCorruptionFailsOpenWithDiagnostics) {
  TempFile f("midfile");
  std::vector<std::size_t> offsets;
  {
    auto store = ResultStore::open(f.path, world_fingerprint());
    ASSERT_TRUE(store.ok());
    for (std::uint64_t k = 1; k <= 3; ++k) {
      ASSERT_TRUE(store.value()->put_census(k, make_census(k, 30)).ok());
    }
    for (const RecordInfo& info : store.value()->records()) {
      offsets.push_back(info.offset);
    }
  }
  auto bytes = read_file(f.path);
  bytes[offsets[1] + 8] ^= 0x40;  // flip a bit inside the second record
  write_file(f.path, bytes);
  // A bad CRC before the tail is corruption, not a torn append — open must
  // refuse rather than silently drop trailing records.
  const auto store = ResultStore::open(f.path, world_fingerprint());
  ASSERT_FALSE(store.ok());
  EXPECT_NE(store.error().message.find("CRC"), std::string::npos)
      << store.error().message;
  const auto report = ResultStore::verify_file(f.path);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().clean());
  EXPECT_GE(report.value().bad_crc, 1u);
}

TEST(ResultStore, BitFlipFuzzNeverServesWrongData) {
  TempFile f("fuzz");
  const Census a = make_census(21, 25);
  const Census b = make_census(22, 25);
  const std::vector<double> row = {5.0, -1.0, 17.5};
  {
    auto store = ResultStore::open(f.path, world_fingerprint());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value()->put_census(1, a).ok());
    ASSERT_TRUE(store.value()->put_census(2, b).ok());
    ASSERT_TRUE(store.value()->put_rtt_row(3, row).ok());
  }
  const auto pristine = read_file(f.path);
  ASSERT_FALSE(pristine.empty());
  TempFile damaged("fuzz_damaged");
  std::size_t opens_survived = 0;
  for (const std::uint8_t mask : {std::uint8_t{0x01}, std::uint8_t{0x80}}) {
    for (std::size_t i = 0; i < pristine.size(); ++i) {
      auto bytes = pristine;
      bytes[i] ^= mask;
      write_file(damaged.path, bytes);
      // Every single-bit flip is detected: the file never verifies clean.
      const auto report = ResultStore::verify_file(damaged.path);
      if (report.ok()) {
        EXPECT_FALSE(report.value().clean())
            << "flip of byte " << i << " mask " << int(mask)
            << " went undetected";
      }
      // And if open still succeeds (a flip in the tail record reads as a
      // torn append and is truncated away), whatever it serves is exactly
      // what was written — detected loss, never wrong data.
      const auto store = ResultStore::open(damaged.path, world_fingerprint());
      if (!store.ok()) continue;
      ++opens_survived;
      const auto ra = store.value()->find_census(1);
      const auto rb = store.value()->find_census(2);
      const auto rr = store.value()->find_rtt_row(3);
      if (ra.has_value()) expect_census_eq(*ra, a, "fuzz census 1");
      if (rb.has_value()) expect_census_eq(*rb, b, "fuzz census 2");
      if (rr.has_value()) EXPECT_EQ(*rr, row);
    }
  }
  // Sanity: the loop exercised both failing and surviving opens.
  EXPECT_GT(opens_survived, 0u);
  EXPECT_LT(opens_survived, 2 * pristine.size());
}

#ifdef ANYOPT_STORE_CLI
int run_cli(const std::string& args) {
  const std::string command = std::string(ANYOPT_STORE_CLI) + " " + args +
                              " > /dev/null 2> /dev/null";
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(ResultStore, CliVerifyExitsNonzeroOnDamage) {
  TempFile f("cli");
  {
    auto store = ResultStore::open(f.path, world_fingerprint());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value()->put_census(1, make_census(1, 20)).ok());
    ASSERT_TRUE(store.value()->put_census(2, make_census(2, 20)).ok());
  }
  EXPECT_EQ(run_cli("verify " + f.path), 0);
  EXPECT_EQ(run_cli("inspect " + f.path), 0);
  auto bytes = read_file(f.path);
  bytes[bytes.size() / 2] ^= 0x20;
  write_file(f.path, bytes);
  EXPECT_EQ(run_cli("verify " + f.path), 1);
}
#endif  // ANYOPT_STORE_CLI

// ------------------------------------------------- campaign integration

std::vector<ExperimentSpec> sample_specs() {
  std::vector<ExperimentSpec> specs;
  const std::size_t sites = world().deployment().site_count();
  for (std::size_t a = 0; a + 1 < sites && specs.size() < 8; ++a) {
    ExperimentSpec spec;
    spec.config.announce_order = {
        SiteId{static_cast<SiteId::underlying_type>(a)},
        SiteId{static_cast<SiteId::underlying_type>(a + 1)}};
    spec.config.spacing_s = (a % 2 == 0) ? 360.0 : 0.0;
    spec.nonce = mix64(0x57EED, a);
    spec.ordinal = specs.size();
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST(ResultStoreCampaign, WarmRunReplaysEveryExperiment) {
  telemetry::set_enabled(true);
  TempFile f("warm");
  const auto specs = sample_specs();
  auto store = ResultStore::open(f.path, world_fingerprint());
  ASSERT_TRUE(store.ok());
  const CampaignRunner cold(orchestrator(),
                            {.threads = 1, .store = store.value().get()});
  const std::vector<Census> reference = cold.run(specs);
  EXPECT_EQ(store.value()->size(), specs.size());

  store = ResultStore::open(f.path, world_fingerprint());
  ASSERT_TRUE(store.ok());
  const std::uint64_t hits_before = store_hits();
  const CampaignRunner warm(orchestrator(),
                            {.threads = 1, .store = store.value().get()});
  const std::vector<Census> replayed = warm.run(specs);
  EXPECT_EQ(store_hits() - hits_before, specs.size());
  ASSERT_EQ(replayed.size(), reference.size());
  for (std::size_t i = 0; i < replayed.size(); ++i) {
    expect_census_eq(replayed[i], reference[i],
                     "spec " + std::to_string(i));
  }
}

TEST(ResultStoreCampaign, RetriesBypassTheStoreLookup) {
  telemetry::set_enabled(true);
  TempFile f("retries");
  auto specs = sample_specs();
  specs.resize(2);
  auto store = ResultStore::open(f.path, world_fingerprint());
  ASSERT_TRUE(store.ok());
  const CampaignRunner runner(orchestrator(),
                              {.threads = 1, .store = store.value().get()});
  (void)runner.run(specs);
  // A requeued experiment must re-run — replaying the very census that
  // failed would defeat the retry.  attempt > 0 skips the lookup.
  for (auto& spec : specs) spec.attempt = 1;
  const std::uint64_t hits_before = store_hits();
  (void)runner.run(specs);
  EXPECT_EQ(store_hits() - hits_before, 0u);
}

// --------------------------------------------- checkpoint/resume contract

core::DiscoveryOptions discovery_options(ResultStore* store,
                                         std::size_t threads = 1) {
  core::DiscoveryOptions options;
  options.threads = threads;
  options.store = store;
  return options;
}

TEST(ResultStoreCheckpoint, ResumeAfterKillIsBitIdentical) {
  telemetry::set_enabled(true);
  const core::DiscoveryResult reference =
      core::Discovery(orchestrator(), discovery_options(nullptr)).run();

  // Uninterrupted campaign into a store — results must be unchanged.
  TempFile full("ckpt_full");
  std::vector<RecordInfo> log;
  {
    auto store = ResultStore::open(full.path, world_fingerprint());
    ASSERT_TRUE(store.ok());
    const core::DiscoveryResult with_store =
        core::Discovery(orchestrator(),
                        discovery_options(store.value().get()))
            .run();
    expect_discovery_eq(with_store, reference, "store on vs off");
    log = store.value()->records();
  }
  const std::size_t n = log.size();
  ASSERT_GT(n, 4u);
  {  // every experiment has a distinct content-derived key
    std::set<std::uint64_t> keys;
    for (const RecordInfo& info : log) keys.insert(info.key);
    ASSERT_EQ(keys.size(), n);
  }

  // Kill the campaign after K persisted experiments (clean cut and torn
  // cut), reopen, re-run: K replays, n-K re-run, tables bit-identical.
  struct Cut {
    std::size_t keep;
    std::size_t extra_bytes;  // partial frame left by the "crash"
    std::size_t threads;
  };
  const Cut cuts[] = {
      {0, 0, 1},          // killed before the first flush: plain cold run
      {n / 3, 0, 1},      // killed between appends
      {n / 3, 5, 1},      // killed mid-append: torn tail
      {2 * n / 3, 0, 2},  // resumed on a parallel runner
      {2 * n / 3, 0, 4},
  };
  const auto pristine = read_file(full.path);
  for (const Cut& cut : cuts) {
    const std::string what = "keep " + std::to_string(cut.keep) + "+" +
                             std::to_string(cut.extra_bytes) + " threads " +
                             std::to_string(cut.threads);
    TempFile partial("ckpt_partial");
    const std::size_t end = cut.keep < n
                                ? log[cut.keep].offset + cut.extra_bytes
                                : pristine.size();
    write_file(partial.path,
               {pristine.begin(), pristine.begin() + std::ptrdiff_t(end)});
    auto store = ResultStore::open(partial.path, world_fingerprint());
    ASSERT_TRUE(store.ok()) << what << ": " << store.error().message;
    EXPECT_EQ(store.value()->size(), cut.keep) << what;
    const std::uint64_t hits_before = store_hits();
    const core::DiscoveryResult resumed =
        core::Discovery(
            orchestrator(),
            discovery_options(store.value().get(), cut.threads))
            .run();
    EXPECT_EQ(store_hits() - hits_before, cut.keep) << what;
    expect_discovery_eq(resumed, reference, what);
    // The resumed store is complete: a further run replays everything.
    EXPECT_EQ(store.value()->size(), n) << what;
  }
}

TEST(ResultStoreCheckpoint, ResumeUnderFaultInjectionConverges) {
  telemetry::set_enabled(true);
  fault::FaultPlan plan;
  plan.experiment_failure_prob = 0.25;
  const fault::FaultInjector injector{plan};
  OrchestratorOptions orch_options;
  orch_options.faults = &injector;
  const Orchestrator faulted(world(), orch_options);

  auto options = discovery_options(nullptr);
  options.retry_rounds = 3;
  const core::DiscoveryResult reference =
      core::Discovery(faulted, options).run();

  TempFile full("fault_full");
  std::vector<RecordInfo> log;
  {
    auto store = ResultStore::open(full.path, world_fingerprint());
    ASSERT_TRUE(store.ok());
    auto store_options = discovery_options(store.value().get());
    store_options.retry_rounds = 3;
    const core::DiscoveryResult with_store =
        core::Discovery(faulted, store_options).run();
    expect_discovery_eq(with_store, reference, "faulted store on vs off");
    log = store.value()->records();
  }
  // Retries re-put their key, so the log can carry superseded records;
  // cut at an arbitrary record boundary and resume.
  ASSERT_GT(log.size(), 4u);
  const auto pristine = read_file(full.path);
  for (const std::size_t keep : {log.size() / 4, log.size() / 2}) {
    TempFile partial("fault_partial");
    write_file(partial.path, {pristine.begin(),
                              pristine.begin() +
                                  std::ptrdiff_t(log[keep].offset)});
    auto store = ResultStore::open(partial.path, world_fingerprint());
    ASSERT_TRUE(store.ok());
    auto resume_options = discovery_options(store.value().get());
    resume_options.retry_rounds = 3;
    const core::DiscoveryResult resumed =
        core::Discovery(faulted, resume_options).run();
    expect_discovery_eq(resumed, reference,
                        "faulted resume at " + std::to_string(keep));
  }
}

TEST(ResultStoreCheckpoint, RttMatrixWarmStartIsBitIdentical) {
  telemetry::set_enabled(true);
  TempFile f("rtt_matrix");
  const core::RttMatrix reference = core::RttMatrix::measure(orchestrator());
  auto store = ResultStore::open(f.path, world_fingerprint());
  ASSERT_TRUE(store.ok());
  const core::RttMatrix cold =
      core::RttMatrix::measure(orchestrator(), 0x5111, store.value().get());
  EXPECT_EQ(store.value()->size(), reference.site_count());
  const std::uint64_t hits_before = store_hits();
  const core::RttMatrix warm =
      core::RttMatrix::measure(orchestrator(), 0x5111, store.value().get());
  EXPECT_EQ(store_hits() - hits_before, reference.site_count());
  ASSERT_EQ(cold.site_count(), reference.site_count());
  ASSERT_EQ(warm.site_count(), reference.site_count());
  for (std::size_t s = 0; s < reference.site_count(); ++s) {
    for (std::size_t t = 0; t < reference.target_count(); ++t) {
      const SiteId site{static_cast<SiteId::underlying_type>(s)};
      const TargetId target{static_cast<TargetId::underlying_type>(t)};
      ASSERT_EQ(cold.rtt(site, target), reference.rtt(site, target));
      ASSERT_EQ(warm.rtt(site, target), reference.rtt(site, target));
    }
  }
}

TEST(ResultStoreCheckpoint, PipelineWarmStartPredictsIdentically) {
  telemetry::set_enabled(true);
  TempFile f("pipeline");
  const auto config = anycast::AnycastConfig::all_sites(world().deployment());
  double cold_mean = 0;
  {
    auto store = ResultStore::open(f.path, world_fingerprint());
    ASSERT_TRUE(store.ok());
    core::PipelineOptions options;
    options.store = store.value().get();
    core::AnyOptPipeline pipeline(orchestrator(), options);
    pipeline.discover();
    pipeline.measure_rtts();
    cold_mean = pipeline.predict(config).mean_rtt();
  }
  auto store = ResultStore::open(f.path, world_fingerprint());
  ASSERT_TRUE(store.ok());
  const std::uint64_t hits_before = store_hits();
  core::PipelineOptions options;
  options.store = store.value().get();
  core::AnyOptPipeline pipeline(orchestrator(), options);
  pipeline.discover();
  pipeline.measure_rtts();
  EXPECT_EQ(pipeline.predict(config).mean_rtt(), cold_mean);
  EXPECT_GT(store_hits() - hits_before, 0u);
}

// ------------------------------------------------------- store_io glue

TEST(StoreIo, PairwiseTableRoundTrip) {
  TempFile f("table_io");
  Rng rng(0x7AB1E);
  core::PairwiseTable table;
  table.init(5, 37);
  for (auto& pair : table.outcome) {
    for (auto& kind : pair) {
      kind = static_cast<core::PrefKind>(rng.below(5));
    }
  }
  auto store = ResultStore::open(f.path, world_fingerprint());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(core::save_table(*store.value(), 0xAB, table).ok());
  const auto loaded = core::load_table(*store.value(), 0xAB);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  expect_tables_eq(loaded.value(), table, "store_io table");
  const auto missing = core::load_table(*store.value(), 0xAC);
  ASSERT_FALSE(missing.ok());
}

TEST(StoreIo, DiscoveryResultRoundTripAcrossReopen) {
  TempFile f("discovery_io");
  const core::DiscoveryResult result =
      core::Discovery(orchestrator(), discovery_options(nullptr)).run();
  const std::uint64_t key = core::discovery_key(0xD15C0, true);
  EXPECT_NE(key, core::discovery_key(0xD15C0, false));
  {
    auto store = ResultStore::open(f.path, world_fingerprint());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(core::save_discovery(*store.value(), key, result).ok());
  }
  auto store = ResultStore::open(f.path, world_fingerprint());
  ASSERT_TRUE(store.ok());
  const auto loaded = core::load_discovery(*store.value(), key);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  expect_discovery_eq(loaded.value(), result, "store_io discovery");
  EXPECT_EQ(loaded.value().experiments, result.experiments);
  ASSERT_FALSE(core::load_discovery(*store.value(), key + 1).ok());
}

// ------------------------------------------------------- read-only opens

TEST(ResultStore, ReadOnlyOpenReadsEverythingAndRefusesWrites) {
  TempFile f("readonly");
  const Census a = make_census(1, 40);
  {
    auto writer = ResultStore::open(f.path, world_fingerprint());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->put_census(11, a).ok());
  }
  auto reader = ResultStore::open_read_only(f.path);
  ASSERT_TRUE(reader.ok()) << reader.error().message;
  EXPECT_TRUE(reader.value()->read_only());
  EXPECT_EQ(reader.value()->fingerprint(), world_fingerprint());
  EXPECT_EQ(reader.value()->size(), 1u);
  expect_census_eq(fetch(*reader.value(), 11), a, "read-only census");
  // Writes must fail with a state error, not crash or silently drop.
  const Status put = reader.value()->put_census(12, make_census(2, 40));
  ASSERT_FALSE(put.ok());
  EXPECT_NE(put.error().message.find("not writable"), std::string::npos)
      << put.error().message;
  EXPECT_EQ(reader.value()->size(), 1u);
}

TEST(ResultStore, ReadOnlyOpenNeverCreatesOrRepairsTheFile) {
  // Missing or empty files are errors (a read-only open never creates
  // one)...
  TempFile missing("readonly_missing");
  EXPECT_FALSE(ResultStore::open_read_only(missing.path).ok());
  std::ofstream(missing.path).close();  // now exists, zero bytes
  EXPECT_FALSE(ResultStore::open_read_only(missing.path).ok());

  // ...and a torn tail is dropped in memory only: the writer that is
  // mid-append owns the file, so the reader must leave the bytes on disk
  // exactly as found.
  TempFile f("readonly_torn");
  std::vector<std::size_t> offsets;
  {
    auto writer = ResultStore::open(f.path, world_fingerprint());
    ASSERT_TRUE(writer.ok());
    for (std::uint64_t k = 1; k <= 3; ++k) {
      ASSERT_TRUE(writer.value()->put_census(k, make_census(k, 30)).ok());
    }
    for (const RecordInfo& info : writer.value()->records()) {
      offsets.push_back(info.offset);
    }
  }
  std::filesystem::resize_file(f.path, offsets[2] + 3);
  const auto size_before = std::filesystem::file_size(f.path);
  {
    auto reader = ResultStore::open_read_only(f.path);
    ASSERT_TRUE(reader.ok()) << reader.error().message;
    EXPECT_EQ(reader.value()->recovered_tail_bytes(), 3u);
    EXPECT_EQ(reader.value()->size(), 2u);
    expect_census_eq(fetch(*reader.value(), 2), make_census(2, 30),
                     "read-only survivor");
  }
  EXPECT_EQ(std::filesystem::file_size(f.path), size_before)
      << "read-only open must not rewrite the file";
  // A writable open afterwards still recovers normally.
  auto writer = ResultStore::open(f.path, world_fingerprint());
  ASSERT_TRUE(writer.ok()) << writer.error().message;
  EXPECT_EQ(writer.value()->size(), 2u);
}

}  // namespace
}  // namespace anyopt::measure
