// Accuracy of the tunnel-subtraction RTT methodology (§3.1): the
// orchestrator's per-target estimates must recover the true simulated
// site<->target RTTs despite probe noise, loss and the tunnel detour.

#include <gtest/gtest.h>

#include "anycast/config.h"
#include "anycast/world.h"
#include "measure/orchestrator.h"
#include "netbase/stats.h"

namespace anyopt::measure {
namespace {

class RttAccuracyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = anycast::World::create(anycast::WorldParams::test_scale(83))
                 .release();
    orch_ = new Orchestrator(*world_);
  }
  static void TearDownTestSuite() {
    delete orch_;
    delete world_;
  }
  static anycast::World* world_;
  static Orchestrator* orch_;
};

anycast::World* RttAccuracyTest::world_ = nullptr;
Orchestrator* RttAccuracyTest::orch_ = nullptr;

TEST_F(RttAccuracyTest, EstimatesTrackTrueRttsClosely) {
  const SiteId site{4};
  anycast::AnycastConfig cfg;
  cfg.announce_order = {site};
  const auto schedule = cfg.schedule(world_->deployment());
  const bgp::RoutingState state = world_->simulator().run(schedule, 0xACC);
  const std::vector<double> measured = orch_->unicast_rtts(site, 0xACC);

  stats::Online rel_error;
  for (std::uint32_t t = 0; t < world_->targets().size(); ++t) {
    const auto& target = world_->targets().target(TargetId{t});
    const bgp::ResolvedPath path =
        state.resolve(target.as, target.where, t);
    if (!path.reachable || measured[t] < 0) continue;
    const double truth = 2.0 * path.one_way_ms;
    rel_error.add(std::abs(measured[t] - truth) / std::max(truth, 1.0));
  }
  ASSERT_GT(rel_error.count(), world_->targets().size() * 3 / 4);
  // Median-of-7 with ~2% jitter: mean relative error must stay small.
  EXPECT_LT(rel_error.mean(), 0.05);
}

TEST_F(RttAccuracyTest, EstimatesAreIndependentOfTunnelLength) {
  // The tunnel RTT is subtracted out: a far site's estimates must not be
  // systematically inflated by its longer tunnel.  Compare the error
  // distribution of a near site (Newark, close to the orchestrator) and a
  // far one (Singapore).
  for (const SiteId site : {SiteId{10}, SiteId{3}}) {
    anycast::AnycastConfig cfg;
    cfg.announce_order = {site};
    const auto schedule = cfg.schedule(world_->deployment());
    const bgp::RoutingState state =
        world_->simulator().run(schedule, 0xACD);
    const std::vector<double> measured = orch_->unicast_rtts(site, 0xACD);
    stats::Online bias;
    for (std::uint32_t t = 0; t < world_->targets().size(); ++t) {
      const auto& target = world_->targets().target(TargetId{t});
      const bgp::ResolvedPath path =
          state.resolve(target.as, target.where, t);
      if (!path.reachable || measured[t] < 0) continue;
      bias.add(measured[t] - 2.0 * path.one_way_ms);
    }
    // Mean bias stays within a couple of ms either way.
    EXPECT_LT(std::abs(bias.mean()), 2.5)
        << "site " << site.value() + 1 << " tunnel leaked into estimates";
  }
}

TEST_F(RttAccuracyTest, RepeatedMeasurementIsStableForMostTargets) {
  // Between experiments the BGP races re-roll, so a minority of targets
  // genuinely change paths (and thus true RTT).  The *typical* target must
  // repeat tightly — that is the median-of-7 filter at work — while the
  // mean absorbs the path-change tail.
  const SiteId site{0};
  const std::vector<double> a = orch_->unicast_rtts(site, 1000);
  const std::vector<double> b = orch_->unicast_rtts(site, 2000);
  std::vector<double> diffs;
  for (std::size_t t = 0; t < a.size(); ++t) {
    if (a[t] >= 0 && b[t] >= 0) diffs.push_back(std::abs(a[t] - b[t]));
  }
  ASSERT_GT(diffs.size(), a.size() / 2);
  EXPECT_LT(stats::median(diffs), 2.0);
  EXPECT_LT(stats::mean(diffs), 25.0);
}

}  // namespace
}  // namespace anyopt::measure
