#include "measure/campaign_runner.h"

#include <gtest/gtest.h>

#include "anycast/world.h"
#include "netbase/rng.h"

namespace anyopt::measure {
namespace {

const anycast::World& world() {
  static auto w = anycast::World::create(anycast::WorldParams::test_scale(33));
  return *w;
}

std::vector<ExperimentSpec> sample_specs() {
  // A mix of singleton, pairwise-ordered and simultaneous configurations,
  // each with a content-derived nonce.
  std::vector<ExperimentSpec> specs;
  const std::size_t sites = world().deployment().site_count();
  for (std::size_t a = 0; a < sites; ++a) {
    for (std::size_t b = a + 1; b < sites && specs.size() < 12; b += 4) {
      ExperimentSpec spec;
      spec.config.announce_order = {
          SiteId{static_cast<SiteId::underlying_type>(a)},
          SiteId{static_cast<SiteId::underlying_type>(b)}};
      spec.config.spacing_s = (a % 2 == 0) ? 360.0 : 0.0;
      spec.nonce = mix64(mix64(0xCAFE, a), b);
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

TEST(CampaignRunner, SerialPathMatchesDirectOrchestratorCalls) {
  const Orchestrator orchestrator(world());
  const CampaignRunner runner(orchestrator, {.threads = 1});
  const auto specs = sample_specs();
  const std::vector<Census> batch = runner.run(specs);
  ASSERT_EQ(batch.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const Census direct =
        orchestrator.measure(specs[i].config, specs[i].nonce);
    EXPECT_EQ(batch[i].site_of_target, direct.site_of_target) << "spec " << i;
    EXPECT_EQ(batch[i].attachment_of_target, direct.attachment_of_target);
    EXPECT_EQ(batch[i].rtt_ms, direct.rtt_ms);
  }
}

TEST(CampaignRunner, ParallelCensusesBitIdenticalToSerial) {
  const Orchestrator orchestrator(world());
  const CampaignRunner serial(orchestrator, {.threads = 1});
  const CampaignRunner parallel(orchestrator, {.threads = 4});
  EXPECT_EQ(parallel.threads(), 4u);
  const auto specs = sample_specs();
  const std::vector<Census> a = serial.run(specs);
  const std::vector<Census> b = parallel.run(specs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].site_of_target, b[i].site_of_target) << "spec " << i;
    EXPECT_EQ(a[i].attachment_of_target, b[i].attachment_of_target);
    EXPECT_EQ(a[i].rtt_ms, b[i].rtt_ms);  // exact double equality intended
  }
}

TEST(CampaignRunner, ResultsInSpecOrderNotCompletionOrder) {
  // Heavier experiments (more announcements) finish later; spec order must
  // still be preserved.  Announce k+1 sites in spec k and check each census
  // maps targets only onto announced sites.
  const Orchestrator orchestrator(world());
  const CampaignRunner runner(orchestrator, {.threads = 3});
  const std::size_t sites = world().deployment().site_count();
  std::vector<ExperimentSpec> specs;
  for (std::size_t k = 0; k < std::min<std::size_t>(6, sites); ++k) {
    ExperimentSpec spec;
    for (std::size_t s = 0; s <= k; ++s) {
      spec.config.announce_order.push_back(
          SiteId{static_cast<SiteId::underlying_type>(s)});
    }
    spec.nonce = mix64(0xF00D, k);
    specs.push_back(std::move(spec));
  }
  const std::vector<Census> censuses = runner.run(specs);
  ASSERT_EQ(censuses.size(), specs.size());
  for (std::size_t k = 0; k < specs.size(); ++k) {
    for (const SiteId s : censuses[k].site_of_target) {
      if (!s.valid()) continue;
      EXPECT_LE(s.value(), k) << "census " << k
                              << " maps a target to an unannounced site";
    }
  }
}

TEST(CampaignRunner, EmptyBatchReturnsEmpty) {
  const Orchestrator orchestrator(world());
  const CampaignRunner runner(orchestrator, {.threads = 2});
  EXPECT_TRUE(runner.run({}).empty());
}

TEST(Census, EmptyCensusContract) {
  // No reachable target: means and medians are 0.0 by contract, with
  // reachable_count() == 0 distinguishing "no data" from "zero latency".
  Census census;
  census.site_of_target.assign(5, SiteId{});
  census.attachment_of_target.assign(5, bgp::kNoAttachment);
  census.rtt_ms.assign(5, -1.0);
  EXPECT_EQ(census.reachable_count(), 0u);
  EXPECT_TRUE(census.valid_rtts().empty());
  EXPECT_EQ(census.mean_rtt(), 0.0);
  EXPECT_EQ(census.median_rtt(), 0.0);
  // And a fully default census behaves the same.
  const Census empty;
  EXPECT_EQ(empty.reachable_count(), 0u);
  EXPECT_EQ(empty.mean_rtt(), 0.0);
  EXPECT_EQ(empty.median_rtt(), 0.0);
}

}  // namespace
}  // namespace anyopt::measure
