#include "measure/orchestrator.h"

#include <gtest/gtest.h>

#include "anycast/world.h"

namespace anyopt::measure {
namespace {

class OrchestratorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = anycast::World::create(anycast::WorldParams::test_scale(17))
                 .release();
    orch_ = new Orchestrator(*world_);
  }
  static void TearDownTestSuite() {
    delete orch_;
    delete world_;
  }
  static anycast::World* world_;
  static Orchestrator* orch_;
};

anycast::World* OrchestratorTest::world_ = nullptr;
Orchestrator* OrchestratorTest::orch_ = nullptr;

TEST_F(OrchestratorTest, AllSitesConfigReachesNearlyEveryTarget) {
  const auto cfg = anycast::AnycastConfig::all_sites(world_->deployment());
  const Census census = orch_->measure(cfg, 1);
  const double frac = static_cast<double>(census.reachable_count()) /
                      static_cast<double>(world_->targets().size());
  EXPECT_GT(frac, 0.97);  // only probe loss should drop targets
}

TEST_F(OrchestratorTest, CatchmentsPartitionReachableTargets) {
  const auto cfg = anycast::AnycastConfig::all_sites(world_->deployment());
  const Census census = orch_->measure(cfg, 2);
  std::size_t sum = 0;
  for (std::size_t s = 0; s < world_->deployment().site_count(); ++s) {
    sum += census.catchment_size(SiteId{static_cast<SiteId::underlying_type>(s)});
  }
  EXPECT_EQ(sum, census.reachable_count());
}

TEST_F(OrchestratorTest, SingleSiteConfigSendsEveryoneThere) {
  anycast::AnycastConfig cfg;
  cfg.announce_order = {SiteId{4}};  // London / GTT
  const Census census = orch_->measure(cfg, 3);
  EXPECT_GT(census.reachable_count(), 0u);
  for (std::size_t t = 0; t < census.site_of_target.size(); ++t) {
    if (census.site_of_target[t].valid()) {
      EXPECT_EQ(census.site_of_target[t], SiteId{4});
    }
  }
}

TEST_F(OrchestratorTest, RttsAreRealisticMagnitudes) {
  const auto cfg = anycast::AnycastConfig::all_sites(world_->deployment());
  const Census census = orch_->measure(cfg, 4);
  const double mean = census.mean_rtt();
  // Global anycast with 15 sites: mean RTT should be tens of ms.
  EXPECT_GT(mean, 5.0);
  EXPECT_LT(mean, 200.0);
  for (const double r : census.rtt_ms) {
    if (r >= 0) EXPECT_LT(r, 600.0);
  }
}

TEST_F(OrchestratorTest, MoreSitesReducesMeanRttVersusOneSite) {
  anycast::AnycastConfig one;
  one.announce_order = {SiteId{0}};
  const auto all = anycast::AnycastConfig::all_sites(world_->deployment());
  const double mean_one = orch_->measure(one, 5).mean_rtt();
  const double mean_all = orch_->measure(all, 5).mean_rtt();
  EXPECT_LT(mean_all, mean_one);
}

TEST_F(OrchestratorTest, UnicastRttMatchesSingleSiteCensus) {
  const auto rtts = orch_->unicast_rtts(SiteId{2}, 6);
  EXPECT_EQ(rtts.size(), world_->targets().size());
  std::size_t valid = 0;
  for (const double r : rtts) {
    if (r >= 0) ++valid;
  }
  EXPECT_GT(valid, world_->targets().size() * 9 / 10);
}

TEST_F(OrchestratorTest, TunnelRttGrowsWithDistance) {
  // Newark is near the orchestrator (Cambridge, MA); Singapore is not.
  const double near = orch_->tunnel_rtt_ms(SiteId{10});   // Newark
  const double far = orch_->tunnel_rtt_ms(SiteId{3});     // Singapore
  EXPECT_LT(near, far);
  EXPECT_GT(near, 0.0);
}

TEST_F(OrchestratorTest, SameNonceIsReproducible) {
  const auto cfg = anycast::AnycastConfig::of_sites({SiteId{1}, SiteId{8}});
  const Census a = orch_->measure(cfg, 77);
  const Census b = orch_->measure(cfg, 77);
  EXPECT_EQ(a.site_of_target, b.site_of_target);
  EXPECT_EQ(a.rtt_ms, b.rtt_ms);
}

TEST_F(OrchestratorTest, MeasurementNoiseIsSmallRelativeToRtt) {
  // Re-measuring the same configuration with a different nonce changes the
  // probe noise but not the catchments' general RTT level.
  const auto cfg = anycast::AnycastConfig::all_sites(world_->deployment());
  const double m1 = orch_->measure(cfg, 8).mean_rtt();
  const double m2 = orch_->measure(cfg, 9).mean_rtt();
  EXPECT_NEAR(m1, m2, std::max(3.0, 0.12 * m1));
}

TEST_F(OrchestratorTest, AttachmentCensusTracksPeers) {
  anycast::AnycastConfig cfg = anycast::AnycastConfig::all_sites(world_->deployment());
  const auto peers = world_->deployment().all_peer_attachments();
  ASSERT_FALSE(peers.empty());
  cfg.enabled_peers.assign(peers.begin(), peers.end());
  const Census census = orch_->measure(cfg, 10);
  std::size_t via_peers = 0;
  for (const auto at : peers) via_peers += census.attachment_catchment_size(at);
  // Some — but a minority of — targets should come in via peer sessions.
  EXPECT_GT(via_peers, 0u);
  EXPECT_LT(via_peers, census.reachable_count() / 2);
}

}  // namespace
}  // namespace anyopt::measure
