// Amortization invariance: the forwarding cache in `resolve()` and the
// SimScratch allocation reuse must not change a single measured bit.  Two
// worlds built from the same seed — one with every amortization layer
// enabled (the defaults), one with the cache and scratch reuse forced off —
// must produce byte-identical censuses, preference tables and explanations
// across every thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "anycast/world.h"
#include "core/discovery.h"
#include "measure/campaign_runner.h"
#include "measure/orchestrator.h"
#include "netbase/rng.h"
#include "netbase/telemetry.h"

namespace anyopt::measure {
namespace {

struct AmortizedEnv {
  std::unique_ptr<anycast::World> world;
  std::unique_ptr<Orchestrator> orchestrator;
};

/// Shared world pair (building a world costs seconds; every test in this
/// binary compares the same two).  `amortized()` runs with the default
/// cache + scratch; `baseline()` has both forced off.
AmortizedEnv& amortized() {
  static AmortizedEnv env = [] {
    AmortizedEnv e;
    e.world = anycast::World::create(anycast::WorldParams::test_scale(21));
    e.orchestrator = std::make_unique<Orchestrator>(*e.world);
    return e;
  }();
  return env;
}

AmortizedEnv& baseline() {
  static AmortizedEnv env = [] {
    AmortizedEnv e;
    anycast::WorldParams params = anycast::WorldParams::test_scale(21);
    params.sim.resolution_cache = false;
    e.world = anycast::World::create(params);
    OrchestratorOptions options;
    options.reuse_scratch = false;
    e.orchestrator = std::make_unique<Orchestrator>(*e.world, options);
    return e;
  }();
  return env;
}

/// Keeps telemetry state from leaking between suites in this binary.
class CacheInvarianceTest : public ::testing::Test {
 protected:
  void SetUp() override { force_off(); }
  void TearDown() override { force_off(); }
  static void force_off() {
    telemetry::set_enabled(false);
    telemetry::set_tracing(false);
    telemetry::Registry::global().reset();
  }
};

std::vector<ExperimentSpec> campaign_specs(const anycast::Deployment& depl) {
  // A pairwise-order batch shaped like a discovery campaign leg.
  std::vector<ExperimentSpec> specs;
  const std::size_t sites = depl.site_count();
  for (std::size_t k = 0; k < 12; ++k) {
    ExperimentSpec spec;
    spec.config.announce_order = {
        SiteId{static_cast<SiteId::underlying_type>(k % sites)},
        SiteId{static_cast<SiteId::underlying_type>((k + 1 + k / sites) %
                                                    sites)}};
    spec.nonce = mix64(0xCAC4E, k);
    specs.push_back(std::move(spec));
  }
  return specs;
}

void expect_censuses_identical(const std::vector<Census>& a,
                               const std::vector<Census>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].site_of_target, b[i].site_of_target) << "experiment " << i;
    EXPECT_EQ(a[i].attachment_of_target, b[i].attachment_of_target)
        << "experiment " << i;
    ASSERT_EQ(a[i].rtt_ms.size(), b[i].rtt_ms.size());
    for (std::size_t t = 0; t < a[i].rtt_ms.size(); ++t) {
      // operator== on doubles deliberately: bit-identical, not "close".
      ASSERT_EQ(a[i].rtt_ms[t], b[i].rtt_ms[t])
          << "experiment " << i << " target " << t;
    }
  }
}

TEST_F(CacheInvarianceTest, CensusesBitIdenticalAcrossThreadCounts) {
  const auto specs =
      campaign_specs(baseline().orchestrator->world().deployment());
  CampaignRunnerOptions off_options;
  off_options.threads = 1;
  off_options.reuse_scratch = false;
  const CampaignRunner reference(*baseline().orchestrator, off_options);
  const std::vector<Census> want = reference.run(specs);

  for (const std::size_t threads : {1u, 2u, 4u}) {
    CampaignRunnerOptions options;
    options.threads = threads;
    const CampaignRunner runner(*amortized().orchestrator, options);
    const std::vector<Census> got = runner.run(specs);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_censuses_identical(want, got);
  }
}

TEST_F(CacheInvarianceTest, DiscoveryTablesBitIdentical) {
  core::DiscoveryOptions options;
  options.threads = 2;
  const core::Discovery cached(*amortized().orchestrator, options);
  const core::Discovery uncached(*baseline().orchestrator, options);

  const core::DiscoveryResult a = cached.run();
  const core::DiscoveryResult b = uncached.run();

  EXPECT_EQ(a.experiments, b.experiments);
  EXPECT_EQ(a.provider_sites, b.provider_sites);
  EXPECT_EQ(a.provider_prefs.outcome, b.provider_prefs.outcome);
  ASSERT_EQ(a.site_prefs.size(), b.site_prefs.size());
  for (std::size_t p = 0; p < a.site_prefs.size(); ++p) {
    EXPECT_EQ(a.site_prefs[p].outcome, b.site_prefs[p].outcome)
        << "provider " << p;
  }
}

TEST_F(CacheInvarianceTest, ExplainBypassesCacheAndMatchesBaseline) {
  // explain() must report the ground-truth walk whether the forwarding
  // cache is cold (first resolve not yet memoized) or warm (every walk
  // memoized) — and must equal the cache-free world's explanation.
  const auto& targets = amortized().world->targets();
  anycast::AnycastConfig config;
  config.announce_order = {SiteId{0}, SiteId{1}};
  const auto schedule =
      config.schedule(amortized().world->deployment());
  const std::uint64_t nonce = mix64(0xE4, 9);

  const bgp::RoutingState cached =
      amortized().world->simulator().run(schedule, nonce);
  const bgp::RoutingState plain =
      baseline().world->simulator().run(schedule, nonce);

  const std::size_t step = std::max<std::size_t>(1, targets.size() / 40);
  for (std::size_t t = 0; t < targets.size(); t += step) {
    const anycast::Target& tgt =
        targets.target(TargetId{static_cast<TargetId::underlying_type>(t)});
    const std::string cold =
        cached.explain(tgt.as, tgt.where, t)
            .to_string(amortized().world->internet());
    // Warm the cache for this client AS, then explain again.
    (void)cached.resolve(tgt.as, tgt.where, t);
    const std::string warm =
        cached.explain(tgt.as, tgt.where, t)
            .to_string(amortized().world->internet());
    const std::string want =
        plain.explain(tgt.as, tgt.where, t)
            .to_string(baseline().world->internet());
    EXPECT_EQ(cold, want) << "target " << t;
    EXPECT_EQ(warm, want) << "target " << t;

    // The resolved path agrees with the cache-free resolution too.
    const bgp::ResolvedPath via_cache = cached.resolve(tgt.as, tgt.where, t);
    const bgp::ResolvedPath via_walk = plain.resolve(tgt.as, tgt.where, t);
    EXPECT_EQ(via_cache.reachable, via_walk.reachable) << "target " << t;
    EXPECT_EQ(via_cache.site, via_walk.site) << "target " << t;
    EXPECT_EQ(via_cache.attachment, via_walk.attachment) << "target " << t;
    EXPECT_EQ(via_cache.as_path, via_walk.as_path) << "target " << t;
    ASSERT_EQ(via_cache.one_way_ms, via_walk.one_way_ms) << "target " << t;
  }
}

TEST_F(CacheInvarianceTest, AmortizationActuallyEngages) {
  // Guard against the invariance suite passing vacuously: with telemetry
  // on, the amortized configuration must record cache hits and scratch
  // reuse, and the baseline configuration must record neither.
  telemetry::set_enabled(true);
  auto& reg = telemetry::Registry::global();

  const auto specs =
      campaign_specs(amortized().orchestrator->world().deployment());
  const CampaignRunner runner(*amortized().orchestrator, {.threads = 1});
  (void)runner.run(specs);

  EXPECT_GT(reg.counter_value("bgp.resolve.cache_hit"), 0u);
  EXPECT_GT(reg.counter_value("sim.scratch_reuse"), 0u);

  reg.reset();
  CampaignRunnerOptions off_options;
  off_options.threads = 1;
  off_options.reuse_scratch = false;
  const CampaignRunner off_runner(*baseline().orchestrator, off_options);
  (void)off_runner.run(specs);

  EXPECT_EQ(reg.counter_value("bgp.resolve.cache_hit"), 0u);
  EXPECT_EQ(reg.counter_value("sim.scratch_reuse"), 0u);
}

}  // namespace
}  // namespace anyopt::measure
