// Result invariance: enabling telemetry (metrics and full tracing) must not
// change a single measured bit.  Instrumentation never touches experiment
// RNG — nonces are content-derived — so a discovery campaign re-run with
// telemetry on produces byte-identical censuses and preference tables.

#include <gtest/gtest.h>

#include <vector>

#include "core/discovery.h"
#include "measure/campaign_runner.h"
#include "netbase/rng.h"
#include "netbase/telemetry.h"
#include "support/core_fixture.h"

namespace anyopt::measure {
namespace {

using anyopt::testing::default_env;

/// Restores the global telemetry switches and wipes the registry so this
/// suite cannot leak state into other suites in the same binary.
class TelemetryInvarianceTest : public ::testing::Test {
 protected:
  void SetUp() override { force_off(); }
  void TearDown() override { force_off(); }
  static void force_off() {
    telemetry::set_enabled(false);
    telemetry::set_tracing(false);
    telemetry::Registry::global().reset();
  }
};

std::vector<ExperimentSpec> campaign_specs(const anycast::Deployment& depl) {
  // A pairwise-order batch shaped like a discovery campaign leg.
  std::vector<ExperimentSpec> specs;
  const std::size_t sites = depl.site_count();
  for (std::size_t k = 0; k < 12; ++k) {
    ExperimentSpec spec;
    spec.config.announce_order = {
        SiteId{static_cast<SiteId::underlying_type>(k % sites)},
        SiteId{static_cast<SiteId::underlying_type>((k + 1 + k / sites) %
                                                    sites)}};
    spec.nonce = mix64(0x1E1E, k);
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST_F(TelemetryInvarianceTest, CampaignCensusesBitIdenticalOnAndOff) {
  const auto& env = default_env();
  const auto specs = campaign_specs(env.orchestrator->world().deployment());
  const CampaignRunner runner(*env.orchestrator, {.threads = 2});

  const std::vector<Census> off = runner.run(specs);

  telemetry::set_enabled(true);
  telemetry::set_tracing(true);
  const std::vector<Census> on = runner.run(specs);

  // Telemetry did run: the campaign recorded its experiments...
  EXPECT_EQ(telemetry::Registry::global().counter_value(
                "campaign.experiments"),
            specs.size());
  EXPECT_GT(telemetry::Registry::global().trace_event_count(), 0u);

  // ...and changed nothing.  Every census field compares exactly; RTTs use
  // operator== on doubles deliberately (bit-identical, not "close").
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i].site_of_target, on[i].site_of_target)
        << "experiment " << i;
    EXPECT_EQ(off[i].attachment_of_target, on[i].attachment_of_target)
        << "experiment " << i;
    ASSERT_EQ(off[i].rtt_ms.size(), on[i].rtt_ms.size());
    for (std::size_t t = 0; t < off[i].rtt_ms.size(); ++t) {
      ASSERT_EQ(off[i].rtt_ms[t], on[i].rtt_ms[t])
          << "experiment " << i << " target " << t;
    }
  }
}

TEST_F(TelemetryInvarianceTest, DiscoveryRunBitIdenticalOnAndOff) {
  const auto& env = default_env();
  core::DiscoveryOptions options;
  options.threads = 2;
  const core::Discovery discovery(*env.orchestrator, options);

  const core::DiscoveryResult off = discovery.run();

  telemetry::set_enabled(true);
  telemetry::set_tracing(true);
  const core::DiscoveryResult on = discovery.run();

  EXPECT_GT(telemetry::Registry::global().counter_value(
                "discovery.pairs_classified"),
            0u);

  EXPECT_EQ(off.experiments, on.experiments);
  EXPECT_EQ(off.provider_sites, on.provider_sites);
  EXPECT_EQ(off.provider_prefs.outcome, on.provider_prefs.outcome);
  ASSERT_EQ(off.site_prefs.size(), on.site_prefs.size());
  for (std::size_t p = 0; p < off.site_prefs.size(); ++p) {
    EXPECT_EQ(off.site_prefs[p].outcome, on.site_prefs[p].outcome)
        << "provider " << p;
  }
}

TEST_F(TelemetryInvarianceTest, SerialAndPooledPathsAgreeUnderTelemetry) {
  // The instrumented serial path and the instrumented pool path must still
  // agree with each other (the telemetry hooks differ between them).
  const auto& env = default_env();
  const auto specs = campaign_specs(env.orchestrator->world().deployment());

  telemetry::set_enabled(true);
  const CampaignRunner serial(*env.orchestrator, {.threads = 1});
  const CampaignRunner pooled(*env.orchestrator, {.threads = 4});
  const std::vector<Census> a = serial.run(specs);
  const std::vector<Census> b = pooled.run(specs);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].site_of_target, b[i].site_of_target) << "experiment " << i;
    EXPECT_EQ(a[i].rtt_ms, b[i].rtt_ms) << "experiment " << i;
  }
}

}  // namespace
}  // namespace anyopt::measure
