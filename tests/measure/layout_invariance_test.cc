// Layout invariance: the structure-of-arrays resolve path (the frozen
// `bgp::CompactState` the measurement plane uses at Internet scale) must
// not change a single measured bit relative to the engine's
// array-of-structs layout.  Censuses, discovery preference tables and
// serve-layer query responses are compared byte for byte with
// `compact_resolve` flipped — the end-to-end enforcement of the
// "bit-identical by construction" claim in bgp/walk.h.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "anycast/world.h"
#include "core/discovery.h"
#include "measure/orchestrator.h"
#include "netbase/rng.h"
#include "netbase/telemetry.h"
#include "netbase/thread_pool.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "serve/snapshot.h"

namespace anyopt::measure {
namespace {

struct LayoutEnv {
  std::unique_ptr<anycast::World> world;
  std::unique_ptr<Orchestrator> compact;  ///< SoA resolve (the default)
  std::unique_ptr<Orchestrator> classic;  ///< engine-layout resolve
};

/// One shared world, two orchestrators that differ ONLY in the RIB layout
/// the resolve pass reads.
LayoutEnv& env() {
  static LayoutEnv e = [] {
    LayoutEnv out;
    out.world = anycast::World::create(anycast::WorldParams::test_scale(23));
    OrchestratorOptions compact_options;
    compact_options.compact_resolve = true;
    out.compact = std::make_unique<Orchestrator>(*out.world, compact_options);
    OrchestratorOptions classic_options;
    classic_options.compact_resolve = false;
    out.classic = std::make_unique<Orchestrator>(*out.world, classic_options);
    return out;
  }();
  return e;
}

/// Keeps telemetry state from leaking between suites in this binary.
class LayoutInvarianceTest : public ::testing::Test {
 protected:
  void SetUp() override { force_off(); }
  void TearDown() override { force_off(); }
  static void force_off() {
    telemetry::set_enabled(false);
    telemetry::set_tracing(false);
    telemetry::Registry::global().reset();
  }
};

void expect_census_identical(const Census& a, const Census& b) {
  EXPECT_EQ(a.site_of_target, b.site_of_target);
  EXPECT_EQ(a.attachment_of_target, b.attachment_of_target);
  ASSERT_EQ(a.rtt_ms.size(), b.rtt_ms.size());
  for (std::size_t t = 0; t < a.rtt_ms.size(); ++t) {
    // operator== on doubles deliberately: bit-identical, not "close".
    ASSERT_EQ(a.rtt_ms[t], b.rtt_ms[t]) << "target " << t;
  }
}

TEST_F(LayoutInvarianceTest, CensusesBitIdenticalAcrossRandomConfigs) {
  const std::size_t sites = env().world->deployment().site_count();
  Rng rng{0x50A};
  for (std::uint64_t round = 0; round < 6; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    anycast::AnycastConfig config;
    const std::size_t k = 1 + rng.below(sites);
    std::vector<std::size_t> ids(sites);
    for (std::size_t s = 0; s < sites; ++s) ids[s] = s;
    rng.shuffle(ids);
    for (std::size_t s = 0; s < k; ++s) {
      config.announce_order.push_back(
          SiteId{static_cast<SiteId::underlying_type>(ids[s])});
    }
    const std::uint64_t nonce = mix64(0x1A40, round);
    expect_census_identical(env().compact->measure(config, nonce),
                            env().classic->measure(config, nonce));
  }
}

TEST_F(LayoutInvarianceTest, DiscoveryTablesBitIdentical) {
  core::DiscoveryOptions options;
  options.threads = 2;
  const core::Discovery via_compact(*env().compact, options);
  const core::Discovery via_classic(*env().classic, options);

  const core::DiscoveryResult a = via_compact.run();
  const core::DiscoveryResult b = via_classic.run();

  EXPECT_EQ(a.experiments, b.experiments);
  EXPECT_EQ(a.provider_sites, b.provider_sites);
  EXPECT_EQ(a.provider_prefs.outcome, b.provider_prefs.outcome);
  ASSERT_EQ(a.site_prefs.size(), b.site_prefs.size());
  for (std::size_t p = 0; p < a.site_prefs.size(); ++p) {
    EXPECT_EQ(a.site_prefs[p].outcome, b.site_prefs[p].outcome)
        << "provider " << p;
  }
}

TEST_F(LayoutInvarianceTest, ServeResponsesBitIdentical) {
  // The serve layer exposes the same flip (SnapshotOptions::compact_resolve);
  // two snapshots built over the two layouts must answer every query with
  // the exact same bytes.  `Service::execute` is the pure request core, so
  // the comparison sees no socket or threading noise.
  serve::SnapshotOptions options;
  options.test_scale = true;
  options.seed = 23;
  options.compact_resolve = true;
  Result<std::shared_ptr<serve::Snapshot>> compact =
      serve::Snapshot::build(options);
  ASSERT_TRUE(compact.ok()) << compact.error().message;
  options.compact_resolve = false;
  Result<std::shared_ptr<serve::Snapshot>> classic =
      serve::Snapshot::build(options);
  ASSERT_TRUE(classic.ok()) << classic.error().message;

  const std::vector<std::string> requests = {
      R"({"op":"info"})",
      R"({"op":"predict","sites":[0,1]})",
      R"({"op":"predict","sites":[2,0,1],"clients":[0,5,17],"detail":true})",
      R"({"op":"score","sites":[1,2]})",
      R"({"op":"score","sites":[0]})",
  };
  for (const std::string& line : requests) {
    Result<serve::Request> request = serve::parse_request(line);
    ASSERT_TRUE(request.ok()) << line;
    EXPECT_EQ(serve::Service::execute(*compact.value(), request.value()),
              serve::Service::execute(*classic.value(), request.value()))
        << line;
  }
}

TEST_F(LayoutInvarianceTest, ParallelResolveBitIdenticalToSerial) {
  // The resolve_pool knob is a pure scheduling change: censuses AND the
  // frozen RIB's cache hit/miss tallies must be bit-identical to the
  // serial pass at any pool size.  (Chunk boundaries never split a
  // client-AS run, so the per-AS miss-then-replay pattern is preserved
  // exactly; the planes merge order-invariantly.)
  telemetry::set_enabled(true);
  auto& reg = telemetry::Registry::global();

  anycast::AnycastConfig config;
  config.announce_order = {SiteId{0}, SiteId{2}, SiteId{4}, SiteId{7}};
  const std::uint64_t nonce = 0x9A7A11E1;

  const Census serial = env().compact->measure(config, nonce);
  const std::uint64_t serial_hits = reg.counter_value("bgp.resolve.cache_hit");
  const std::uint64_t serial_misses =
      reg.counter_value("bgp.resolve.cache_miss");
  EXPECT_GT(serial_hits + serial_misses, 0u);

  for (const std::size_t workers : {2u, 5u}) {
    SCOPED_TRACE("pool size " + std::to_string(workers));
    ThreadPool pool(workers);
    OrchestratorOptions options;
    options.compact_resolve = true;
    options.resolve_pool = &pool;
    const Orchestrator parallel(*env().world, options);
    reg.reset();
    const Census census = parallel.measure(config, nonce);
    expect_census_identical(serial, census);
    EXPECT_EQ(reg.counter_value("bgp.resolve.cache_hit"), serial_hits);
    EXPECT_EQ(reg.counter_value("bgp.resolve.cache_miss"), serial_misses);
  }
}

TEST_F(LayoutInvarianceTest, CompactPathActuallyEngages) {
  // Guard against the suite passing vacuously: with telemetry on, the
  // compact orchestrator must freeze a RIB (bytes.rib high-water > 0) and
  // stream its aggregation through shards, while the classic orchestrator
  // must touch neither.
  telemetry::set_enabled(true);
  auto& reg = telemetry::Registry::global();

  anycast::AnycastConfig config;
  config.announce_order = {SiteId{0}, SiteId{1}};
  (void)env().compact->measure(config, 0xE6A6E);
  EXPECT_GT(reg.gauge_max("bytes.rib"), 0);
  EXPECT_GT(reg.gauge_max("bytes.census_shards"), 0);

  reg.reset();
  (void)env().classic->measure(config, 0xE6A6E);
  EXPECT_EQ(reg.gauge_max("bytes.rib"), 0);
}

}  // namespace
}  // namespace anyopt::measure
