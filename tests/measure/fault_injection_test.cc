// Fault-injection invariance and semantics at the measurement layer.
//
// The contract under test (pattern of cache_invariance_test): with the
// fault layer disabled — no injector, or an injector wrapping an empty
// plan — every census is bit-identical to a configuration that never heard
// of faults, at every thread count.  With a seeded plan, faulted campaigns
// are reproducible across thread counts, and each fault kind produces its
// documented degradation.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "anycast/world.h"
#include "measure/campaign_runner.h"
#include "measure/orchestrator.h"
#include "netbase/fault.h"
#include "netbase/rng.h"
#include "netbase/telemetry.h"

namespace anyopt::measure {
namespace {

struct Env {
  std::unique_ptr<anycast::World> world;
  std::unique_ptr<Orchestrator> plain;  ///< no fault injector
};

Env& env() {
  static Env e = [] {
    Env out;
    out.world = anycast::World::create(anycast::WorldParams::test_scale(21));
    out.plain = std::make_unique<Orchestrator>(*out.world);
    return out;
  }();
  return e;
}

/// Keeps telemetry state from leaking between suites in this binary.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { force_off(); }
  void TearDown() override { force_off(); }
  static void force_off() {
    telemetry::set_enabled(false);
    telemetry::set_tracing(false);
    telemetry::Registry::global().reset();
  }
};

/// A discovery-shaped pairwise batch with campaign ordinals attached.
std::vector<ExperimentSpec> campaign_specs() {
  const std::size_t sites = env().world->deployment().site_count();
  std::vector<ExperimentSpec> specs;
  for (std::size_t k = 0; k < 12; ++k) {
    ExperimentSpec spec;
    spec.config.announce_order = {
        SiteId{static_cast<SiteId::underlying_type>(k % sites)},
        SiteId{static_cast<SiteId::underlying_type>((k + 1 + k / sites) %
                                                    sites)}};
    spec.nonce = mix64(0xFA17CA, k);
    spec.ordinal = k;
    specs.push_back(std::move(spec));
  }
  return specs;
}

void expect_censuses_identical(const std::vector<Census>& a,
                               const std::vector<Census>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].site_of_target, b[i].site_of_target) << "experiment " << i;
    EXPECT_EQ(a[i].attachment_of_target, b[i].attachment_of_target)
        << "experiment " << i;
    ASSERT_EQ(a[i].rtt_ms.size(), b[i].rtt_ms.size());
    for (std::size_t t = 0; t < a[i].rtt_ms.size(); ++t) {
      // operator== on doubles deliberately: bit-identical, not "close".
      ASSERT_EQ(a[i].rtt_ms[t], b[i].rtt_ms[t])
          << "experiment " << i << " target " << t;
    }
  }
}

/// A plan exercising every fault kind, seeded for reproducibility.
fault::FaultPlan full_plan() {
  fault::FaultPlan plan;
  plan.seed = 0xBAD;
  plan.experiment_failure_prob = 0.25;
  plan.degraded_round_prob = 0.3;
  plan.degraded_drop_fraction = 0.3;
  plan.loss_storms.push_back({4, 7, 0.4});
  // Site 1 is announced by the first two campaign specs; fail it from the
  // start so announce-suppression provably engages.
  plan.site_failures.push_back({SiteId{1}, 0, fault::kNever});
  fault::SessionFlap flap;
  flap.attachment = 0;  // site 0's transit session
  flap.first_down_s = 800.0;
  flap.down_dwell_s = 60.0;
  plan.session_flaps.push_back(flap);
  return plan;
}

TEST_F(FaultInjectionTest, EmptyPlanBitIdenticalToNoInjector) {
  const fault::FaultInjector empty{fault::FaultPlan{}};
  ASSERT_TRUE(empty.plan().empty());
  OrchestratorOptions options;
  options.faults = &empty;
  const Orchestrator with_empty_injector(*env().world, options);

  const auto specs = campaign_specs();
  const CampaignRunner reference(*env().plain, {.threads = 1});
  const std::vector<Census> want = reference.run(specs);

  for (const std::size_t threads : {1u, 2u, 4u}) {
    const CampaignRunner runner(with_empty_injector,
                                {.threads = threads});
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_censuses_identical(want, runner.run(specs));
  }
}

TEST_F(FaultInjectionTest, SeededPlanReproducibleAcrossThreadCounts) {
  const fault::FaultInjector injector{full_plan()};
  OrchestratorOptions options;
  options.faults = &injector;
  const Orchestrator faulted(*env().world, options);

  const auto specs = campaign_specs();
  const CampaignRunner reference(faulted, {.threads = 1});
  const std::vector<Census> want = reference.run(specs);

  // The faulted run must differ from the calm one (the plan engages)...
  const std::vector<Census> calm =
      CampaignRunner(*env().plain, {.threads = 1}).run(specs);
  bool any_difference = false;
  for (std::size_t i = 0; i < specs.size() && !any_difference; ++i) {
    any_difference = want[i].site_of_target != calm[i].site_of_target ||
                     want[i].rtt_ms != calm[i].rtt_ms;
  }
  EXPECT_TRUE(any_difference);

  // ...yet replay bit-identically at any worker count.
  for (const std::size_t threads : {2u, 4u}) {
    const CampaignRunner runner(faulted, {.threads = threads});
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_censuses_identical(want, runner.run(specs));
  }
}

TEST_F(FaultInjectionTest, LostRoundHonoursEmptyCensusContract) {
  // Assertion-backed form of the empty-census contract documented at
  // Census::mean_rtt(): a round killed by the fault layer reports an
  // entirely empty census — 0.0 means "no data", never "zero latency" —
  // and callers must detect it via reachable_count().
  fault::FaultPlan plan;
  plan.experiment_failure_prob = 1.0;
  const fault::FaultInjector injector{plan};
  OrchestratorOptions options;
  options.faults = &injector;
  const Orchestrator faulted(*env().world, options);

  anycast::AnycastConfig config;
  config.announce_order = {SiteId{0}, SiteId{1}};
  const Census census = faulted.measure(config, mix64(0xDEAD, 1),
                                        ExperimentAt{0, 0});
  ASSERT_EQ(census.reachable_count(), 0u);
  EXPECT_EQ(census.mean_rtt(), 0.0);
  EXPECT_EQ(census.median_rtt(), 0.0);
  EXPECT_TRUE(census.valid_rtts().empty());
}

TEST_F(FaultInjectionTest, SiteFailureSuppressesItsCatchment) {
  fault::FaultPlan plan;
  plan.site_failures.push_back({SiteId{0}, 0, fault::kNever});
  const fault::FaultInjector injector{plan};
  OrchestratorOptions options;
  options.faults = &injector;
  const Orchestrator faulted(*env().world, options);

  anycast::AnycastConfig config;
  config.announce_order = {SiteId{0}, SiteId{1}};
  const std::uint64_t nonce = mix64(0xDEAD, 2);
  const Census calm = env().plain->measure(config, nonce);
  const Census hurt = faulted.measure(config, nonce, ExperimentAt{0, 0});

  ASSERT_GT(calm.catchment_size(SiteId{0}), 0u);
  EXPECT_EQ(hurt.catchment_size(SiteId{0}), 0u);
  // The survivor absorbs the failed site's catchment.
  EXPECT_GE(hurt.catchment_size(SiteId{1}), calm.catchment_size(SiteId{1}));
}

TEST_F(FaultInjectionTest, DegradedRoundDropsTargetsButNeverLies) {
  fault::FaultPlan plan;
  plan.degraded_round_prob = 1.0;
  plan.degraded_drop_fraction = 0.4;
  const fault::FaultInjector injector{plan};
  OrchestratorOptions options;
  options.faults = &injector;
  const Orchestrator faulted(*env().world, options);

  anycast::AnycastConfig config;
  config.announce_order = {SiteId{0}, SiteId{1}};
  const std::uint64_t nonce = mix64(0xDEAD, 3);
  const Census calm = env().plain->measure(config, nonce);
  const Census hurt = faulted.measure(config, nonce, ExperimentAt{0, 0});

  // Roughly the configured fraction vanishes...
  EXPECT_LT(hurt.reachable_count(), calm.reachable_count());
  EXPECT_GT(hurt.reachable_count(), calm.reachable_count() / 3);
  // ...and every target that IS measured reports its true catchment (a
  // degraded round is partial, not wrong).
  for (std::size_t t = 0; t < hurt.site_of_target.size(); ++t) {
    if (!hurt.site_of_target[t].valid()) continue;
    EXPECT_EQ(hurt.site_of_target[t], calm.site_of_target[t])
        << "target " << t;
  }
}

TEST_F(FaultInjectionTest, LossStormShrinksTheMeasuredPopulation) {
  fault::FaultPlan plan;
  plan.loss_storms.push_back({0, 0, 0.95});
  const fault::FaultInjector injector{plan};
  OrchestratorOptions options;
  options.faults = &injector;
  const Orchestrator faulted(*env().world, options);

  anycast::AnycastConfig config;
  config.announce_order = {SiteId{0}, SiteId{1}};
  const std::uint64_t nonce = mix64(0xDEAD, 4);
  const Census calm = env().plain->measure(config, nonce);
  // In the storm window: with per-probe survival ~0.05, reaching
  // min_valid=3 of 7 is rare.
  const Census stormy = faulted.measure(config, nonce, ExperimentAt{0, 0});
  EXPECT_LT(stormy.reachable_count(), calm.reachable_count() / 4);
  // Outside the storm window the same orchestrator measures normally.
  const Census after = faulted.measure(config, nonce, ExperimentAt{1, 0});
  expect_censuses_identical({calm}, {after});
}

TEST_F(FaultInjectionTest, RetriesRestoreStormLosses) {
  // The prober's retry-with-backoff recovers targets a storm would have
  // cost: with a moderate extra loss and a few retry rounds, nearly the
  // whole calm population measures again.
  fault::FaultPlan plan;
  plan.loss_storms.push_back({0, 0, 0.6});
  const fault::FaultInjector injector{plan};

  OrchestratorOptions no_retry;
  no_retry.faults = &injector;
  const Orchestrator fragile(*env().world, no_retry);

  OrchestratorOptions with_retry = no_retry;
  with_retry.probe.max_retries = 4;
  const Orchestrator resilient(*env().world, with_retry);

  anycast::AnycastConfig config;
  config.announce_order = {SiteId{0}, SiteId{1}};
  const std::uint64_t nonce = mix64(0xDEAD, 5);
  const std::size_t calm = env().plain->measure(config, nonce).reachable_count();
  const std::size_t without =
      fragile.measure(config, nonce, ExperimentAt{0, 0}).reachable_count();
  const std::size_t with =
      resilient.measure(config, nonce, ExperimentAt{0, 0}).reachable_count();

  EXPECT_LT(without, calm);
  EXPECT_GT(with, without);
  EXPECT_GE(with + calm / 50, calm);  // within 2% of the calm population
}

TEST_F(FaultInjectionTest, FaultTelemetryCountersEngage) {
  // Guard against the invariance tests passing vacuously: with telemetry
  // on, a faulted campaign must record injections, and a fault-free one
  // must record none.
  const fault::FaultInjector injector{full_plan()};
  OrchestratorOptions options;
  options.faults = &injector;
  options.probe.max_retries = 2;
  const Orchestrator faulted(*env().world, options);

  telemetry::set_enabled(true);
  auto& reg = telemetry::Registry::global();
  const auto specs = campaign_specs();
  (void)CampaignRunner(faulted, {.threads = 1}).run(specs);

  EXPECT_GT(reg.counter_value("fault.injected.round_failures"), 0u);
  EXPECT_GT(reg.counter_value("fault.injected.degraded_rounds"), 0u);
  EXPECT_GT(reg.counter_value("fault.injected.targets_dropped"), 0u);
  EXPECT_GT(reg.counter_value("fault.injected.storm_rounds"), 0u);
  EXPECT_GT(reg.counter_value("fault.injected.announce_suppressed"), 0u);
  EXPECT_GT(reg.counter_value("fault.injected.flaps"), 0u);
  EXPECT_GT(reg.counter_value("probe.retries"), 0u);

  reg.reset();
  (void)CampaignRunner(*env().plain, {.threads = 1}).run(specs);
  EXPECT_EQ(reg.counter_value("fault.injected.round_failures"), 0u);
  EXPECT_EQ(reg.counter_value("fault.injected.degraded_rounds"), 0u);
  EXPECT_EQ(reg.counter_value("fault.injected.flaps"), 0u);
}

}  // namespace
}  // namespace anyopt::measure
