#pragma once
// Shared, lazily built worlds and pipelines for the core test suites.
// Building discovery tables costs dozens of simulated BGP experiments, so
// suites share one instance per world flavour.

#include <memory>

#include "anycast/world.h"
#include "core/anyopt.h"
#include "measure/orchestrator.h"

namespace anyopt::testing {

struct CoreEnv {
  std::unique_ptr<anycast::World> world;
  std::unique_ptr<measure::Orchestrator> orchestrator;
  std::unique_ptr<core::AnyOptPipeline> pipeline;
};

/// The default test world (all policy imperfections on).
inline CoreEnv& default_env() {
  static CoreEnv env = [] {
    CoreEnv e;
    e.world = anycast::World::create(anycast::WorldParams::test_scale(21));
    e.orchestrator = std::make_unique<measure::Orchestrator>(*e.world);
    e.pipeline = std::make_unique<core::AnyOptPipeline>(*e.orchestrator);
    return e;
  }();
  return env;
}

/// A "clean" world realizing the shortest-path model of Theorem A.2: no
/// deviant policies, no multipath, and every router breaks ties by
/// (AS_PATH, neighbor_ID) — i.e. router-id, not arrival order.  The
/// theorem then guarantees pairwise results predict every subset.
inline CoreEnv& clean_env() {
  static CoreEnv env = [] {
    CoreEnv e;
    anycast::WorldParams params = anycast::WorldParams::test_scale(22);
    params.internet.deviant_fraction = 0;
    params.internet.multipath_fraction = 0;
    params.internet.oldest_pref_fraction = 0.0;
    // Assumption (a) of §4.1: no partial tier-1 peering.  Disabling
    // transit-transit peering means every non-tier-1 AS sees only provider
    // routes, i.e. the shortest-path model of Theorem A.2 applies.
    params.internet.transit_peer_prob = 0;
    e.world = anycast::World::create(params);
    e.orchestrator = std::make_unique<measure::Orchestrator>(*e.world);
    e.pipeline = std::make_unique<core::AnyOptPipeline>(*e.orchestrator);
    return e;
  }();
  return env;
}

}  // namespace anyopt::testing
