#pragma once
// Hand-built micro-topologies for deterministic BGP simulator tests.

#include <vector>

#include "bgp/origin.h"
#include "bgp/simulator.h"
#include "topo/builder.h"

namespace anyopt::testing {

/// Builder for small explicit Internets.
class MiniWorld {
 public:
  AsId tier1(const std::string& name, std::uint32_t router_id = 0) {
    topo::AsNode n;
    n.asn = next_asn_++;
    n.tier = topo::Tier::kTier1;
    n.name = name;
    n.router_id = router_id ? router_id : n.asn;
    const AsId id = net_.graph.add_as(std::move(n));
    // Peer with all existing tier-1s to keep the clique invariant.
    for (const AsId other : net_.tier1s) {
      (void)net_.graph.connect(id, other, topo::Relation::kPeer, {0, 0}, 1.0);
    }
    net_.tier1s.push_back(id);
    return id;
  }

  AsId transit(std::uint32_t router_id = 0) {
    return add_plain(topo::Tier::kTransit, router_id);
  }

  AsId stub(std::uint32_t router_id = 0) {
    return add_plain(topo::Tier::kStub, router_id);
  }

  /// `provider` provides transit to `customer`.
  void provide(AsId provider, AsId customer, double latency_ms = 1.0) {
    auto r = net_.graph.connect(customer, provider,
                                topo::Relation::kProvider, {0, 0}, latency_ms);
    if (!r.ok()) throw std::logic_error(r.error().message);
  }

  void peer(AsId a, AsId b, double latency_ms = 1.0) {
    auto r =
        net_.graph.connect(a, b, topo::Relation::kPeer, {0, 0}, latency_ms);
    if (!r.ok()) throw std::logic_error(r.error().message);
  }

  topo::AsNode& node(AsId id) { return net_.graph.node_mut(id); }

  /// Finalizes deviant tables and returns the Internet (call once).
  topo::Internet finish() {
    net_.deviant_rank.assign(net_.graph.as_count(), {});
    return std::move(net_);
  }

  /// Transit attachment of `site` to `host`.
  static bgp::OriginAttachment transit_attach(SiteId site, AsId host) {
    bgp::OriginAttachment a;
    a.site = site;
    a.neighbor = host;
    a.neighbor_is = topo::Relation::kProvider;
    a.where = {0, 0};
    a.latency_ms = 0.25;
    return a;
  }

  /// Peering attachment of `site` to `peer_as`.
  static bgp::OriginAttachment peer_attach(SiteId site, AsId peer_as) {
    bgp::OriginAttachment a = transit_attach(site, peer_as);
    a.neighbor_is = topo::Relation::kPeer;
    return a;
  }

 private:
  AsId add_plain(topo::Tier tier, std::uint32_t router_id) {
    topo::AsNode n;
    n.asn = next_asn_++;
    n.tier = tier;
    n.router_id = router_id ? router_id : n.asn;
    return net_.graph.add_as(std::move(n));
  }

  topo::Internet net_;
  std::uint32_t next_asn_ = 1;
};

}  // namespace anyopt::testing
