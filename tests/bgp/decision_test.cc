#include "bgp/decision.h"

#include <gtest/gtest.h>

namespace anyopt::bgp {
namespace {

RibEntry entry(int local_pref, std::size_t path_len, std::uint64_t arrival,
               std::uint32_t router_id, std::uint32_t neighbor = 1) {
  RibEntry e;
  e.present = true;
  e.neighbor = AsId{neighbor};
  e.local_pref = local_pref;
  e.as_path.assign(path_len > 0 ? path_len - 1 : 0, AsId{99});
  e.arrival_seq = arrival;
  e.neighbor_router_id = router_id;
  return e;
}

TEST(Decision, LocalPrefDominatesEverything) {
  DecisionStep step{};
  const RibEntry a = entry(/*lp=*/300, /*len=*/9, /*arrival=*/5, /*rid=*/9);
  const RibEntry b = entry(/*lp=*/200, /*len=*/1, /*arrival=*/1, /*rid=*/1);
  EXPECT_LT(compare_routes(a, b, {}, &step), 0);
  EXPECT_EQ(step, DecisionStep::kLocalPref);
}

TEST(Decision, PathLengthBreaksLocalPrefTie) {
  DecisionStep step{};
  const RibEntry a = entry(100, 2, 5, 9);
  const RibEntry b = entry(100, 3, 1, 1);
  EXPECT_LT(compare_routes(a, b, {}, &step), 0);
  EXPECT_EQ(step, DecisionStep::kAsPathLength);
}

TEST(Decision, OldestRouteBreaksTie) {
  DecisionStep step{};
  const RibEntry a = entry(100, 2, /*arrival=*/7, /*rid=*/9);
  const RibEntry b = entry(100, 2, /*arrival=*/3, /*rid=*/1);
  DecisionOptions opts;
  opts.prefer_oldest = true;
  EXPECT_GT(compare_routes(a, b, opts, &step), 0);  // b arrived first
  EXPECT_EQ(step, DecisionStep::kOldestRoute);
}

TEST(Decision, WithoutOldestStepRouterIdDecides) {
  DecisionStep step{};
  const RibEntry a = entry(100, 2, 7, /*rid=*/2);
  const RibEntry b = entry(100, 2, 3, /*rid=*/5);
  DecisionOptions opts;
  opts.prefer_oldest = false;
  EXPECT_LT(compare_routes(a, b, opts, &step), 0);  // lower router id wins
  EXPECT_EQ(step, DecisionStep::kRouterId);
}

TEST(Decision, ArrivalOrderFlipsOutcomeOnlyWhenTied) {
  // The paper's Fig. 4a mechanism: same LP and path length, different
  // arrival order => different winner.
  const RibEntry first = entry(100, 3, 1, 5);
  const RibEntry second = entry(100, 3, 2, 4);
  DecisionOptions with_oldest{true};
  DecisionOptions without{false};
  EXPECT_LT(compare_routes(first, second, with_oldest), 0);
  // Without the vendor step, router-id would pick `second` (rid 4 < 5).
  EXPECT_GT(compare_routes(first, second, without), 0);
}

TEST(Decision, NeighborAddressIsFinalTotalTieBreak) {
  DecisionStep step{};
  RibEntry a = entry(100, 2, 5, 7, /*neighbor=*/2);
  RibEntry b = entry(100, 2, 5, 7, /*neighbor=*/4);
  EXPECT_LT(compare_routes(a, b, {}, &step), 0);
  EXPECT_EQ(step, DecisionStep::kNeighborAddress);
}

TEST(Decision, ParallelOriginSessionsBrokenByAttachment) {
  RibEntry a = entry(300, 1, 5, 7, 0);
  RibEntry b = entry(300, 1, 5, 7, 0);
  a.neighbor = AsId{};  // origin
  b.neighbor = AsId{};
  a.attachment = 0;
  b.attachment = 3;
  EXPECT_LT(compare_routes(a, b, {}), 0);
  EXPECT_GT(compare_routes(b, a, {}), 0);
}

TEST(Decision, ComparatorIsAntisymmetric) {
  const RibEntry a = entry(100, 2, 1, 5);
  const RibEntry b = entry(100, 2, 2, 4);
  for (const bool oldest : {true, false}) {
    DecisionOptions opts{oldest};
    EXPECT_EQ(compare_routes(a, b, opts) < 0, compare_routes(b, a, opts) > 0);
  }
}

TEST(Decision, MultipathEqualIgnoresArrivalAndRouterId) {
  const RibEntry a = entry(100, 2, 1, 5);
  const RibEntry b = entry(100, 2, 9, 2);
  EXPECT_TRUE(multipath_equal(a, b));
  const RibEntry c = entry(100, 3, 1, 5);
  EXPECT_FALSE(multipath_equal(a, c));
  const RibEntry d = entry(200, 2, 1, 5);
  EXPECT_FALSE(multipath_equal(a, d));
}

TEST(Decision, PathLengthCountsOriginHop) {
  RibEntry direct;  // learned straight from the origin: empty as_path
  direct.present = true;
  EXPECT_EQ(direct.path_length(), 1u);
  const RibEntry via_one = entry(100, 2, 1, 1);
  EXPECT_EQ(via_one.path_length(), 2u);
}

}  // namespace
}  // namespace anyopt::bgp
