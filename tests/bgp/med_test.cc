#include <gtest/gtest.h>

#include "bgp/decision.h"
#include "bgp/simulator.h"
#include "support/mini_world.h"

namespace anyopt::bgp {
namespace {

using anyopt::testing::MiniWorld;

constexpr SiteId kSiteA{0};
constexpr SiteId kSiteB{1};

TEST(Med, ComparedOnlyBetweenSameNeighborRoutes) {
  RibEntry a;
  a.present = true;
  a.neighbor = AsId{1};
  a.local_pref = 100;
  a.med = 50;
  RibEntry b = a;
  b.med = 10;
  DecisionStep step{};
  // Same neighbor: lower MED wins at step 4.
  EXPECT_GT(compare_routes(a, b, {}, &step), 0);
  EXPECT_EQ(step, DecisionStep::kMed);
  // Different neighbors: MED skipped, later steps decide.
  b.neighbor = AsId{2};
  b.neighbor_router_id = 1;
  a.neighbor_router_id = 2;
  (void)compare_routes(a, b, {}, &step);
  EXPECT_NE(step, DecisionStep::kMed);
}

TEST(Med, SteersHostAsBetweenCoHostedSites) {
  // Two sites behind the same tier-1; the second site advertises a lower
  // MED, so the whole AS egresses there despite equal IGP-ish distances.
  MiniWorld w;
  const AsId t1 = w.tier1("T1", 10);
  const AsId s = w.stub(30);
  w.provide(t1, s);
  const topo::Internet net = w.finish();
  std::vector<OriginAttachment> at{MiniWorld::transit_attach(kSiteA, t1),
                                   MiniWorld::transit_attach(kSiteB, t1)};
  at[0].med = 100;
  at[1].med = 5;
  const Simulator sim(net, at);
  const std::vector<Injection> schedule{{0.0, 0, false}, {360.0, 1, false}};
  const RoutingState state = sim.run(schedule, 1);
  EXPECT_EQ(state.resolve(s, {0, 0}, 0).site, kSiteB);
}

TEST(Med, DoesNotLeakBeyondTheHostAs) {
  // MED is non-transitive: a neighbor of the host AS must see med == 0 on
  // the re-advertised route regardless of the session MEDs.
  MiniWorld w;
  const AsId t1 = w.tier1("T1", 10);
  const AsId s = w.stub(30);
  w.provide(t1, s);
  const topo::Internet net = w.finish();
  std::vector<OriginAttachment> at{MiniWorld::transit_attach(kSiteA, t1)};
  at[0].med = 777;
  const Simulator sim(net, at);
  const std::vector<Injection> schedule{{0.0, 0, false}};
  const RoutingState state = sim.run(schedule, 1);
  const RibEntry* at_host = state.best(t1);
  ASSERT_NE(at_host, nullptr);
  EXPECT_EQ(at_host->med, 777u);
  const RibEntry* at_stub = state.best(s);
  ASSERT_NE(at_stub, nullptr);
  EXPECT_EQ(at_stub->med, 0u);
}

TEST(Med, PrependBeatsMed) {
  // Path length is step 2, MED step 4: a prepended low-MED session still
  // loses to an unprepended high-MED sibling.
  MiniWorld w;
  const AsId t1 = w.tier1("T1", 10);
  const AsId s = w.stub(30);
  w.provide(t1, s);
  const topo::Internet net = w.finish();
  std::vector<OriginAttachment> at{MiniWorld::transit_attach(kSiteA, t1),
                                   MiniWorld::transit_attach(kSiteB, t1)};
  at[0].med = 999;  // bad MED, but no prepend
  at[1].med = 0;    // great MED...
  const Simulator sim(net, at);
  const std::vector<Injection> schedule{{0.0, 0, false, 0},
                                        {360.0, 1, false, /*prepend=*/1}};
  const RoutingState state = sim.run(schedule, 1);
  EXPECT_EQ(state.resolve(s, {0, 0}, 0).site, kSiteA);
}

TEST(Med, DefaultZeroIsNeutral) {
  // With default MEDs the IGP/attachment-order behaviour is unchanged:
  // the first attachment (lower index) wins the exact tie.
  MiniWorld w;
  const AsId t1 = w.tier1("T1", 10);
  const AsId s = w.stub(30);
  w.provide(t1, s);
  const topo::Internet net = w.finish();
  const std::vector<OriginAttachment> at{
      MiniWorld::transit_attach(kSiteA, t1),
      MiniWorld::transit_attach(kSiteB, t1)};
  const Simulator sim(net, at);
  const std::vector<Injection> schedule{{0.0, 0, false}, {360.0, 1, false}};
  EXPECT_EQ(sim.run(schedule, 1).resolve(s, {0, 0}, 0).site, kSiteA);
}

}  // namespace
}  // namespace anyopt::bgp
