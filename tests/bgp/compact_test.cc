// SoA RIB correctness (bgp/compact.h): the frozen structure-of-arrays
// layout must resolve bit-identically to the engine's array-of-structs
// state, round-trip through the store codec byte-exactly across randomized
// worlds and configurations, stay robust to sparse Internet-scale client
// ids, and keep the `--mem-budget-mb` cache-capacity degradation purely a
// memory knob.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "anycast/config.h"
#include "anycast/world.h"
#include "bgp/compact.h"
#include "bgp/simulator.h"
#include "measure/store.h"
#include "netbase/codec.h"
#include "netbase/rng.h"
#include "topo/serialize.h"

namespace anyopt::bgp {
namespace {

/// Shared reduced world (building one costs seconds; every test reuses it).
const anycast::World& shared_world() {
  static const std::unique_ptr<anycast::World> world =
      anycast::World::create(anycast::WorldParams::test_scale(29));
  return *world;
}

/// Converges a `k`-site configuration drawn from `rng` and returns the
/// engine-layout state.
RoutingState converge(const anycast::World& world, Rng& rng,
                      std::uint64_t nonce) {
  const std::size_t sites = world.deployment().site_count();
  const std::size_t k = 1 + rng.below(sites);
  std::vector<std::size_t> ids(sites);
  for (std::size_t s = 0; s < sites; ++s) ids[s] = s;
  rng.shuffle(ids);
  anycast::AnycastConfig config;
  for (std::size_t s = 0; s < k; ++s) {
    config.announce_order.push_back(
        SiteId{static_cast<SiteId::underlying_type>(ids[s])});
  }
  return world.simulator().run(config.schedule(world.deployment()), nonce);
}

void expect_paths_equal(const ResolvedPath& want, const ResolvedPath& got,
                        std::size_t t) {
  EXPECT_EQ(want.reachable, got.reachable) << "target " << t;
  EXPECT_EQ(want.site, got.site) << "target " << t;
  EXPECT_EQ(want.attachment, got.attachment) << "target " << t;
  EXPECT_EQ(want.as_path, got.as_path) << "target " << t;
  // operator== on doubles deliberately: bit-identical, not "close".
  ASSERT_EQ(want.one_way_ms, got.one_way_ms) << "target " << t;
}

TEST(CompactRib, ResolveBitIdenticalToEngineLayout) {
  const anycast::World& world = shared_world();
  const auto& targets = world.targets();
  Rng rng{0xF2EE2E};
  for (std::uint64_t round = 0; round < 4; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const RoutingState state = converge(world, rng, mix64(0x51D, round));
    const CompactState compact =
        CompactState::freeze(world.simulator(), state);
    for (std::size_t t = 0; t < targets.size(); ++t) {
      const anycast::Target& tgt =
          targets.target(TargetId{static_cast<TargetId::underlying_type>(t)});
      const ResolvedPath want = state.resolve(tgt.as, tgt.where, t);
      const ResolvedPath got = compact.resolve(tgt.as, tgt.where, t);
      expect_paths_equal(want, got, t);
    }
    // Both layouts memoize per client AS; a second pass replays from each
    // cache and must still agree (the replay path, not just the walk).
    for (std::size_t t = 0; t < targets.size(); t += 7) {
      const anycast::Target& tgt =
          targets.target(TargetId{static_cast<TargetId::underlying_type>(t)});
      expect_paths_equal(state.resolve(tgt.as, tgt.where, t),
                         compact.resolve(tgt.as, tgt.where, t), t);
    }
    EXPECT_GT(compact.cache_hits() + compact.cache_misses(), 0u);
  }
}

TEST(CompactRib, CodecRoundTripIsBitExactAcrossRandomizedRuns) {
  const anycast::World& world = shared_world();
  Rng rng{0xC0DEC};
  for (std::uint64_t round = 0; round < 6; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const RoutingState state = converge(world, rng, mix64(0xE17C, round));
    const CompactState frozen =
        CompactState::freeze(world.simulator(), state);

    codec::Writer encoded;
    frozen.encode(encoded);
    Result<CompactState> decoded = CompactState::decode(encoded.bytes());
    ASSERT_TRUE(decoded.ok()) << decoded.error().message;
    EXPECT_TRUE(frozen.rib_equals(decoded.value()));
    EXPECT_EQ(frozen.as_count(), decoded.value().as_count());
    EXPECT_EQ(frozen.slot_count(), decoded.value().slot_count());
    EXPECT_EQ(frozen.unique_paths(), decoded.value().unique_paths());
    EXPECT_EQ(frozen.prefix_key(), decoded.value().prefix_key());

    // Encoding the decoded state reproduces the exact bytes: the codec is
    // a bijection over everything it persists.
    codec::Writer re_encoded;
    decoded.value().encode(re_encoded);
    ASSERT_EQ(encoded.size(), re_encoded.size());
    EXPECT_TRUE(std::equal(encoded.bytes().begin(), encoded.bytes().end(),
                           re_encoded.bytes().begin()));
  }
}

TEST(CompactRib, DecodedStateIsATableArtifact) {
  const anycast::World& world = shared_world();
  Rng rng{0xDEC0};
  const RoutingState state = converge(world, rng, 0xA11);
  const CompactState frozen = CompactState::freeze(world.simulator(), state);
  codec::Writer encoded;
  frozen.encode(encoded);
  Result<CompactState> decoded = CompactState::decode(encoded.bytes());
  ASSERT_TRUE(decoded.ok());
  // No topology binding: a decoded state compares and persists, but any
  // resolve is unreachable rather than a wild pointer chase.
  const ResolvedPath path =
      decoded.value().resolve(AsId{0}, geo::Coordinates{0, 0}, 0);
  EXPECT_FALSE(path.reachable);
}

TEST(CompactRib, DecodeRejectsTruncation) {
  const anycast::World& world = shared_world();
  Rng rng{0x7255};
  const RoutingState state = converge(world, rng, 0xB22);
  const CompactState frozen = CompactState::freeze(world.simulator(), state);
  codec::Writer encoded;
  frozen.encode(encoded);
  EXPECT_FALSE(CompactState::decode({}).ok());
  const auto bytes = encoded.bytes();
  for (const std::size_t keep :
       {std::size_t{1}, bytes.size() / 3, bytes.size() - 1}) {
    EXPECT_FALSE(CompactState::decode(bytes.subspan(0, keep)).ok())
        << "truncated to " << keep << " of " << bytes.size();
  }
}

TEST(CompactRib, StoreRoundTripsRibRecordsKeyedLikeCensuses) {
  const anycast::World& world = shared_world();
  Rng rng{0x5708E};
  const RoutingState state = converge(world, rng, 0xC33);
  const CompactState frozen = CompactState::freeze(world.simulator(), state);

  const std::string path = ::testing::TempDir() + "compact_rib_store.aopt";
  std::remove(path.c_str());
  const std::uint64_t fingerprint =
      topo::topology_fingerprint(world.internet());
  Result<std::unique_ptr<measure::ResultStore>> opened =
      measure::ResultStore::open(path, fingerprint);
  ASSERT_TRUE(opened.ok()) << opened.error().message;
  std::unique_ptr<measure::ResultStore> store = std::move(opened).value();

  EXPECT_FALSE(store->find_rib(0x9E).has_value());
  ASSERT_TRUE(store->put_rib(0x9E, frozen).ok());
  std::optional<CompactState> loaded = store->find_rib(0x9E);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(frozen.rib_equals(*loaded));

  // The record survives a close/reopen cycle like any other store kind.
  store.reset();
  Result<std::unique_ptr<measure::ResultStore>> reopened =
      measure::ResultStore::open(path, fingerprint);
  ASSERT_TRUE(reopened.ok());
  std::optional<CompactState> warm = reopened.value()->find_rib(0x9E);
  ASSERT_TRUE(warm.has_value());
  EXPECT_TRUE(frozen.rib_equals(*warm));
  std::remove(path.c_str());
}

TEST(CompactRib, SparseClientIdsResolveUnreachableOnBothLayouts) {
  // Regression: the per-client-AS walk caches are dense vectors indexed by
  // AsId; at 75k-scale (or with external/invalid ids) a client id beyond
  // the dense range must resolve as unreachable instead of indexing out of
  // bounds — on the engine layout AND the frozen one.
  const anycast::World& world = shared_world();
  Rng rng{0x5BA25E};
  const RoutingState state = converge(world, rng, 0xD44);
  const CompactState compact = CompactState::freeze(world.simulator(), state);
  const geo::Coordinates where{10.0, 20.0};
  for (const AsId from :
       {AsId{static_cast<AsId::underlying_type>(
            world.internet().graph.as_count())},
        AsId{1u << 20}, AsId{}}) {
    SCOPED_TRACE("client AS " + std::to_string(from.value()));
    const ResolvedPath via_engine = state.resolve(from, where, 0);
    const ResolvedPath via_compact = compact.resolve(from, where, 0);
    EXPECT_FALSE(via_engine.reachable);
    EXPECT_FALSE(via_compact.reachable);
  }
}

TEST(CompactRib, CacheCapacityIsAMemoryKnobNotACorrectnessKnob) {
  const anycast::World& world = shared_world();
  const auto& targets = world.targets();
  Rng rng{0xCA9};
  const RoutingState state = converge(world, rng, 0xE55);
  const CompactState reference =
      CompactState::freeze(world.simulator(), state);
  for (const std::size_t capacity :
       {std::size_t{0}, reference.as_count() / 2}) {
    SCOPED_TRACE("capacity " + std::to_string(capacity));
    CompactState capped = CompactState::freeze(world.simulator(), state);
    const std::size_t before = capped.resolve_cache_bytes();
    capped.set_cache_capacity(capacity);
    EXPECT_LE(capped.resolve_cache_bytes(), before);
    for (std::size_t t = 0; t < targets.size(); t += 3) {
      const anycast::Target& tgt =
          targets.target(TargetId{static_cast<TargetId::underlying_type>(t)});
      expect_paths_equal(reference.resolve(tgt.as, tgt.where, t),
                         capped.resolve(tgt.as, tgt.where, t), t);
    }
  }
}

TEST(CompactRib, PathInterningActuallyCompresses) {
  // Guard against the compression story passing vacuously: a converged
  // Internet shares route tails heavily, so the interned pool must hold
  // strictly fewer unique paths than there are present slots.
  const anycast::World& world = shared_world();
  Rng rng{0x1A7E2};
  const RoutingState state = converge(world, rng, 0xF66);
  const CompactState frozen = CompactState::freeze(world.simulator(), state);
  EXPECT_GT(frozen.unique_paths(), 0u);
  EXPECT_LT(frozen.unique_paths(), frozen.slot_count());
  EXPECT_GT(frozen.retained_bytes(), 0u);
}

}  // namespace
}  // namespace anyopt::bgp
