#include "bgp/policy.h"

#include <gtest/gtest.h>

#include "topo/builder.h"

namespace anyopt::bgp {
namespace {

/// Minimal hand-built Internet: two tier-1s, one deviant transit.
topo::Internet tiny_internet() {
  topo::Internet net;
  topo::AsNode t1;
  t1.asn = 1;
  t1.tier = topo::Tier::kTier1;
  t1.name = "T1";
  topo::AsNode t2 = t1;
  t2.asn = 2;
  t2.name = "T2";
  topo::AsNode mid;
  mid.asn = 3;
  mid.tier = topo::Tier::kTransit;
  mid.deviant_policy = true;
  const AsId a = net.graph.add_as(t1);
  const AsId b = net.graph.add_as(t2);
  const AsId m = net.graph.add_as(mid);
  EXPECT_TRUE(net.graph.connect(a, b, topo::Relation::kPeer, {0, 0}, 1).ok());
  EXPECT_TRUE(
      net.graph.connect(m, a, topo::Relation::kProvider, {0, 0}, 1).ok());
  EXPECT_TRUE(
      net.graph.connect(m, b, topo::Relation::kProvider, {0, 0}, 1).ok());
  net.tier1s = {a, b};
  net.deviant_rank.assign(3, {});
  net.deviant_rank[m.value()] = {1, 0};  // prefers T2 (rank 0) over T1
  return net;
}

TEST(Policy, ConformingLocalPrefUsesBands) {
  const topo::Internet net = tiny_internet();
  const PolicyEngine policy(net);
  const std::vector<AsId> path{AsId{0}};
  EXPECT_EQ(policy.import_local_pref(AsId{0}, topo::Relation::kCustomer, path),
            300);
  EXPECT_EQ(policy.import_local_pref(AsId{0}, topo::Relation::kPeer, path),
            200);
  EXPECT_EQ(policy.import_local_pref(AsId{0}, topo::Relation::kProvider, path),
            100);
}

TEST(Policy, DeviantAsPerturbsWithinBand) {
  const topo::Internet net = tiny_internet();
  const PolicyEngine policy(net);
  const AsId deviant{2};
  const std::vector<AsId> via_t1{AsId{0}};
  const std::vector<AsId> via_t2{AsId{1}};
  const int lp_t1 =
      policy.import_local_pref(deviant, topo::Relation::kProvider, via_t1);
  const int lp_t2 =
      policy.import_local_pref(deviant, topo::Relation::kProvider, via_t2);
  EXPECT_GT(lp_t2, lp_t1);  // rank table prefers T2
  // The bonus must never cross into the peer band.
  EXPECT_LT(lp_t2, 200);
  EXPECT_GE(lp_t1, 100);
}

TEST(Policy, DeviantBonusRequiresTier1OnPath) {
  const topo::Internet net = tiny_internet();
  const PolicyEngine policy(net);
  const AsId deviant{2};
  const std::vector<AsId> no_t1{};  // direct origin route
  EXPECT_EQ(policy.import_local_pref(deviant, topo::Relation::kProvider, no_t1),
            100);
}

TEST(Policy, OriginSideTier1Found) {
  const topo::Internet net = tiny_internet();
  const PolicyEngine policy(net);
  // Path [transit, T2]: origin-adjacent tier-1 is T2 (index 1).
  EXPECT_EQ(policy.origin_side_tier1_index({AsId{2}, AsId{1}}), 1);
  // Path crossing the tier-1 mesh [T1, T2]: origin side is still T2.
  EXPECT_EQ(policy.origin_side_tier1_index({AsId{0}, AsId{1}}), 1);
  EXPECT_EQ(policy.origin_side_tier1_index({AsId{2}}), -1);
}

TEST(Policy, ExportFollowsValleyFreeRules) {
  using R = topo::Relation;
  // Customer-learned: export to everyone.
  EXPECT_TRUE(PolicyEngine::may_export(R::kCustomer, R::kCustomer));
  EXPECT_TRUE(PolicyEngine::may_export(R::kCustomer, R::kPeer));
  EXPECT_TRUE(PolicyEngine::may_export(R::kCustomer, R::kProvider));
  // Peer-learned: only to customers.
  EXPECT_TRUE(PolicyEngine::may_export(R::kPeer, R::kCustomer));
  EXPECT_FALSE(PolicyEngine::may_export(R::kPeer, R::kPeer));
  EXPECT_FALSE(PolicyEngine::may_export(R::kPeer, R::kProvider));
  // Provider-learned: only to customers.
  EXPECT_TRUE(PolicyEngine::may_export(R::kProvider, R::kCustomer));
  EXPECT_FALSE(PolicyEngine::may_export(R::kProvider, R::kPeer));
  EXPECT_FALSE(PolicyEngine::may_export(R::kProvider, R::kProvider));
}

}  // namespace
}  // namespace anyopt::bgp
