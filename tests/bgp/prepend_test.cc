#include <gtest/gtest.h>

#include "bgp/simulator.h"
#include "support/mini_world.h"

namespace anyopt::bgp {
namespace {

using anyopt::testing::MiniWorld;

constexpr SiteId kSiteA{0};
constexpr SiteId kSiteB{1};

/// Diamond with arrival-order stub (ties between the two sites).
struct Diamond {
  topo::Internet net;
  AsId t1, t2, s;
  std::vector<OriginAttachment> attachments;

  Diamond() {
    MiniWorld w;
    t1 = w.tier1("T1", 10);
    t2 = w.tier1("T2", 20);
    s = w.stub(30);
    w.provide(t1, s);
    w.provide(t2, s);
    net = w.finish();
    attachments = {MiniWorld::transit_attach(kSiteA, t1),
                   MiniWorld::transit_attach(kSiteB, t2)};
  }
};

TEST(Prepend, LengthensPathAndRepelsTraffic) {
  Diamond d;
  const Simulator sim(d.net, d.attachments);
  // Site A announced first (would win the arrival tie), but with one
  // prepend its path is longer, so the stub must choose B.
  const std::vector<Injection> schedule{{0.0, 0, false, /*prepend=*/1},
                                        {360.0, 1, false, 0}};
  const RoutingState state = sim.run(schedule, 1);
  EXPECT_EQ(state.resolve(d.s, {0, 0}, 0).site, kSiteB);
}

TEST(Prepend, NoPrependPreservesArrivalTie) {
  Diamond d;
  const Simulator sim(d.net, d.attachments);
  const std::vector<Injection> schedule{{0.0, 0, false, 0},
                                        {360.0, 1, false, 0}};
  EXPECT_EQ(sim.run(schedule, 1).resolve(d.s, {0, 0}, 0).site, kSiteA);
}

TEST(Prepend, EqualPrependOnBothSidesIsNeutral) {
  Diamond d;
  const Simulator sim(d.net, d.attachments);
  const std::vector<Injection> schedule{{0.0, 0, false, 2},
                                        {360.0, 1, false, 2}};
  // Same lengths again: the arrival tie-break decides as before.
  EXPECT_EQ(sim.run(schedule, 1).resolve(d.s, {0, 0}, 0).site, kSiteA);
}

TEST(Prepend, PropagatesThroughIntermediateAses) {
  // Stub behind a middle transit: the prepend must still be visible in
  // path lengths two AS hops away.
  MiniWorld w;
  const AsId t1 = w.tier1("T1", 10);
  const AsId t2 = w.tier1("T2", 20);
  const AsId mid = w.transit(40);
  const AsId s = w.stub(30);
  w.provide(t1, mid);
  w.provide(t2, mid);
  w.provide(mid, s);
  const topo::Internet net = w.finish();
  const std::vector<OriginAttachment> at{
      MiniWorld::transit_attach(kSiteA, t1),
      MiniWorld::transit_attach(kSiteB, t2)};
  const Simulator sim(net, at);

  // Prepend 3 on A: B's path is shorter at `mid`, so everyone downstream
  // uses B regardless of announcement order.
  const std::vector<Injection> schedule{{0.0, 0, false, 3},
                                        {360.0, 1, false, 0}};
  const RoutingState state = sim.run(schedule, 1);
  EXPECT_EQ(state.resolve(s, {0, 0}, 0).site, kSiteB);
  const RibEntry* best = state.best(s);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->origin_prepend, 0);  // the chosen (B) route is unprepended
}

TEST(Prepend, DrainsCoHostedSiteWithinSameAs) {
  // Two sites behind the same tier-1: prepending one loses the iBGP
  // path-length comparison inside the host AS, so ALL of that AS's
  // traffic egresses at the unprepended sibling (how operators drain a
  // site for maintenance without withdrawing it).
  MiniWorld w;
  const AsId t1 = w.tier1("T1", 10);
  const AsId s = w.stub(30);
  w.provide(t1, s);
  const topo::Internet net = w.finish();
  const std::vector<OriginAttachment> at{
      MiniWorld::transit_attach(kSiteA, t1),
      MiniWorld::transit_attach(kSiteB, t1)};
  const Simulator sim(net, at);

  const std::vector<Injection> drained_a{{0.0, 0, false, 2},
                                         {360.0, 1, false, 0}};
  EXPECT_EQ(sim.run(drained_a, 1).resolve(s, {0, 0}, 0).site, kSiteB);
  const std::vector<Injection> drained_b{{0.0, 0, false, 0},
                                         {360.0, 1, false, 2}};
  EXPECT_EQ(sim.run(drained_b, 1).resolve(s, {0, 0}, 0).site, kSiteA);
}

TEST(Prepend, RibEntryPathLengthIncludesPrepend) {
  Diamond d;
  const Simulator sim(d.net, d.attachments);
  const std::vector<Injection> schedule{{0.0, 0, false, 2}};
  const RoutingState state = sim.run(schedule, 1);
  const RibEntry* at_host = state.best(d.t1);
  ASSERT_NE(at_host, nullptr);
  EXPECT_EQ(at_host->origin_prepend, 2);
  EXPECT_EQ(at_host->path_length(), 3u);  // origin + 2 prepends
}

}  // namespace
}  // namespace anyopt::bgp
