// Withdrawal / re-advertisement regression coverage (§4.2).
//
// The load-bearing fact: deployed routers tie-break on arrival order, and a
// re-advertised route is the NEWEST route.  A session that flaps therefore
// loses every arrival-order tie it used to win — the catchment differs
// before vs after the flap even though the final topology (both sessions
// up, same paths, same attributes) is identical.

#include "bgp/flap.h"

#include <gtest/gtest.h>

#include <limits>

#include "bgp/simulator.h"
#include "netbase/rng.h"
#include "netbase/telemetry.h"
#include "support/mini_world.h"

namespace anyopt::bgp {
namespace {

using anyopt::testing::MiniWorld;

constexpr SiteId kSiteA{0};
constexpr SiteId kSiteB{1};

/// Diamond: stub S buys transit from both tier-1s; one site behind each.
/// With `prefers_oldest`, S ties on (local-pref, path length) and keeps the
/// route that arrived first.
struct Diamond {
  topo::Internet net;
  AsId t1, t2, s;
  std::vector<OriginAttachment> attachments;

  explicit Diamond(bool stub_prefers_oldest = true) {
    MiniWorld w;
    t1 = w.tier1("T1", 10);
    t2 = w.tier1("T2", 20);
    s = w.stub(30);
    w.provide(t1, s);
    w.provide(t2, s);
    w.node(s).prefers_oldest = stub_prefers_oldest;
    net = w.finish();
    attachments = {MiniWorld::transit_attach(kSiteA, t1),
                   MiniWorld::transit_attach(kSiteB, t2)};
  }
};

/// A one-cycle flap of attachment 0 starting well after both announcements.
fault::SessionFlap flap_of_a() {
  fault::SessionFlap flap;
  flap.attachment = 0;
  flap.first_down_s = 720.0;  // after B's announcement at t=360
  flap.down_dwell_s = 60.0;
  flap.up_dwell_s = 600.0;
  flap.cycles = 1;
  return flap;
}

TEST(ApplyFlaps, ExpandsCyclesIntoSortedWithdrawAnnouncePairs) {
  std::vector<Injection> schedule{{0.0, 0, false, 2}, {360.0, 1, false}};
  fault::SessionFlap flap = flap_of_a();
  flap.cycles = 2;
  const auto merged = apply_flaps(schedule, {&flap, 1});

  // 2 base + 2 cycles × (withdraw + re-announce).
  ASSERT_EQ(merged.size(), 6u);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].time_s, merged[i].time_s) << "unsorted at " << i;
  }
  // Cycle 1: down at 720, back up at 780; cycle 2 one dwell period later.
  EXPECT_DOUBLE_EQ(merged[2].time_s, 720.0);
  EXPECT_TRUE(merged[2].withdraw);
  EXPECT_DOUBLE_EQ(merged[3].time_s, 780.0);
  EXPECT_FALSE(merged[3].withdraw);
  EXPECT_EQ(merged[3].prepend, 2)
      << "re-advertisement must preserve the original prepend";
  EXPECT_DOUBLE_EQ(merged[4].time_s, 720.0 + 660.0);
  EXPECT_DOUBLE_EQ(merged[5].time_s, 780.0 + 660.0);
}

TEST(ApplyFlaps, IgnoresFlapsOfUnannouncedSessions) {
  const std::vector<Injection> schedule{{0.0, 0, false}};
  fault::SessionFlap flap = flap_of_a();
  flap.attachment = 7;  // never announced
  const auto merged = apply_flaps(schedule, {&flap, 1});
  EXPECT_EQ(merged.size(), 1u);
}

TEST(FlapRegression, FlapThenRecoverFlipsArrivalOrderTie) {
  Diamond d(/*stub_prefers_oldest=*/true);
  const Simulator sim(d.net, d.attachments);

  // A announced first: the stub's tie goes to A and stays with A.
  const std::vector<Injection> calm{{0.0, 0, false}, {360.0, 1, false}};
  ASSERT_EQ(sim.run(calm, 1).resolve(d.s, {0, 0}, 0).site, kSiteA);

  // Same experiment, but A's session flaps once after convergence.  The
  // final topology is identical — both sessions up, same paths — yet A's
  // re-advertisement is now the newest route, so the oldest-route tie at
  // the stub permanently flips to B.
  const fault::SessionFlap flap = flap_of_a();
  const auto flapped = apply_flaps(calm, {&flap, 1});
  EXPECT_EQ(sim.run(flapped, 1).resolve(d.s, {0, 0}, 0).site, kSiteB);
}

TEST(FlapRegression, FlapOutcomeIsReproducible) {
  Diamond d(/*stub_prefers_oldest=*/true);
  const Simulator sim(d.net, d.attachments);
  const std::vector<Injection> calm{{0.0, 0, false}, {360.0, 1, false}};
  const fault::SessionFlap flap = flap_of_a();
  const auto flapped = apply_flaps(calm, {&flap, 1});
  const SiteId first = sim.run(flapped, 42).resolve(d.s, {0, 0}, 0).site;
  const SiteId again = sim.run(flapped, 42).resolve(d.s, {0, 0}, 0).site;
  EXPECT_EQ(first, again);
}

TEST(FlapRegression, RouterIdWorldIsFlapInsensitive) {
  // Ablation: with the stub breaking ties by router id instead of arrival
  // order, the flap changes nothing — the flip above is specifically the
  // oldest-route step at work.
  Diamond d(/*stub_prefers_oldest=*/false);
  const Simulator sim(d.net, d.attachments);
  const std::vector<Injection> calm{{0.0, 0, false}, {360.0, 1, false}};
  const fault::SessionFlap flap = flap_of_a();
  const auto flapped = apply_flaps(calm, {&flap, 1});
  EXPECT_EQ(sim.run(calm, 1).resolve(d.s, {0, 0}, 0).site,
            sim.run(flapped, 1).resolve(d.s, {0, 0}, 0).site);
}

TEST(FlapRegression, FlapCycleMustNotResurrectWithdrawnSession) {
  // A announced at 0, B at 360, A permanently withdrawn at 1000.  A's
  // session also flaps with enough cycles to outlast the withdraw.  The
  // flap expansion must clip at the base withdraw: an experiment that
  // turned a session off decided the final topology, and a later flap
  // cycle re-advertising it would resurrect a dead route.
  Diamond d(/*stub_prefers_oldest=*/true);
  const Simulator sim(d.net, d.attachments);
  const std::vector<Injection> schedule{
      {0.0, 0, false}, {360.0, 1, false}, {1000.0, 0, true}};
  fault::SessionFlap flap = flap_of_a();  // first down at 720
  flap.cycles = 5;                        // cycles land at 720, 1380, ...
  const auto merged = apply_flaps(schedule, {&flap, 1});

  // Only the first cycle fits before the 1000 s withdraw: base 3 events +
  // one withdraw/re-announce pair.
  ASSERT_EQ(merged.size(), 5u);
  for (const Injection& inj : merged) {
    if (inj.attachment == 0 && !inj.withdraw) {
      EXPECT_LT(inj.time_s, 1000.0)
          << "re-advertisement after the base withdraw resurrects the route";
    }
  }
  // End state: A is withdrawn for good, so the stub must sit on B.
  EXPECT_EQ(sim.run(merged, 1).resolve(d.s, {0, 0}, 0).site, kSiteB);
}

TEST(FlapProperty, SeededSweepKeepsSchedulesSortedAndClipped) {
  // Satellite sweep: random schedules mixing base withdraws, flap cycles
  // and prepends.  Two invariants hold for every seed: the merged schedule
  // is time-sorted, and no flap-generated injection of an attachment lands
  // at or past that attachment's first post-announcement base withdraw.
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    Rng rng{mix64(0xF1A9ULL, seed)};
    const std::size_t attachments = 1 + rng.below(4);

    std::vector<Injection> base;
    std::vector<double> announce_at(attachments, -1.0);
    std::vector<double> clip_at(attachments,
                                std::numeric_limits<double>::infinity());
    double t = 0.0;
    for (std::size_t a = 0; a < attachments; ++a) {
      announce_at[a] = t;
      base.push_back(Injection{t, static_cast<AttachmentIndex>(a), false,
                               static_cast<std::uint8_t>(rng.below(4))});
      t += 360.0;
    }
    for (std::size_t a = 0; a < attachments; ++a) {
      if (rng.below(2) == 0) continue;  // half the sessions get withdrawn
      const double w = announce_at[a] + 60.0 + rng.uniform(0.0, 2000.0);
      clip_at[a] = w;
      base.push_back(Injection{w, static_cast<AttachmentIndex>(a), true, 0});
    }

    std::vector<fault::SessionFlap> flaps;
    for (std::size_t a = 0; a < attachments; ++a) {
      if (rng.below(3) == 0) continue;
      fault::SessionFlap flap;
      flap.attachment = static_cast<AttachmentIndex>(a);
      flap.first_down_s = rng.uniform(10.0, 1500.0);
      flap.down_dwell_s = rng.uniform(10.0, 120.0);
      flap.up_dwell_s = rng.uniform(60.0, 900.0);
      flap.cycles = static_cast<std::uint32_t>(1 + rng.below(6));
      flaps.push_back(flap);
    }

    const auto merged = apply_flaps(base, flaps);

    for (std::size_t i = 1; i < merged.size(); ++i) {
      EXPECT_LE(merged[i - 1].time_s, merged[i].time_s)
          << "seed " << seed << " unsorted at " << i;
    }
    // Count base injections per (attachment, withdraw, time) so the
    // flap-generated ones can be told apart after the sort.
    auto is_base = [&](const Injection& inj) {
      for (const Injection& b : base) {
        if (b.attachment == inj.attachment && b.withdraw == inj.withdraw &&
            b.time_s == inj.time_s) {
          return true;
        }
      }
      return false;
    };
    for (const Injection& inj : merged) {
      if (is_base(inj)) continue;
      EXPECT_LT(inj.time_s, clip_at[inj.attachment])
          << "seed " << seed << ": flap injection (withdraw=" << inj.withdraw
          << ") at " << inj.time_s << " past the base withdraw of attachment "
          << static_cast<int>(inj.attachment);
      if (!inj.withdraw) {
        EXPECT_EQ(inj.prepend, base[inj.attachment].prepend)
            << "seed " << seed
            << ": re-advertisement must preserve the original prepend";
      }
    }
  }
}

TEST(FlapRegression, WithdrawEventsAreCounted) {
  Diamond d;
  const Simulator sim(d.net, d.attachments);
  const std::vector<Injection> calm{{0.0, 0, false}, {360.0, 1, false}};
  const fault::SessionFlap flap = flap_of_a();
  const auto flapped = apply_flaps(calm, {&flap, 1});

  telemetry::Registry::global().reset();
  telemetry::set_enabled(true);
  (void)sim.run(flapped, 1);
  const auto withdraws =
      telemetry::Registry::global().counter_value("bgp.sim.withdraw_events");
  telemetry::set_enabled(false);
  telemetry::Registry::global().reset();
  // One withdrawal processed at the host tier-1 and one propagated to each
  // AS that carried the route — at least the injected one must be counted.
  EXPECT_GE(withdraws, 1u);
}

}  // namespace
}  // namespace anyopt::bgp
