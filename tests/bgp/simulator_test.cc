#include "bgp/simulator.h"

#include <gtest/gtest.h>

#include "support/mini_world.h"

namespace anyopt::bgp {
namespace {

using anyopt::testing::MiniWorld;

constexpr SiteId kSiteA{0};
constexpr SiteId kSiteB{1};

/// Diamond: stub S buys transit from both tier-1s; one site behind each.
struct Diamond {
  topo::Internet net;
  AsId t1, t2, s;
  std::vector<OriginAttachment> attachments;

  explicit Diamond(bool stub_prefers_oldest = true) {
    MiniWorld w;
    t1 = w.tier1("T1", 10);
    t2 = w.tier1("T2", 20);
    s = w.stub(30);
    w.provide(t1, s);
    w.provide(t2, s);
    w.node(s).prefers_oldest = stub_prefers_oldest;
    net = w.finish();
    attachments = {MiniWorld::transit_attach(kSiteA, t1),
                   MiniWorld::transit_attach(kSiteB, t2)};
  }
};

TEST(Simulator, SingleSiteReachesEveryAs) {
  Diamond d;
  const Simulator sim(d.net, d.attachments);
  const std::vector<Injection> schedule{{0.0, 0, false}};
  const RoutingState state = sim.run(schedule, 1);
  for (const AsId as : {d.t1, d.t2, d.s}) {
    ASSERT_NE(state.best(as), nullptr) << "AS " << as.value();
  }
  const ResolvedPath path = state.resolve(d.s, {0, 0}, 0);
  ASSERT_TRUE(path.reachable);
  EXPECT_EQ(path.site, kSiteA);
}

TEST(Simulator, HostAsPrefersCustomerRouteOverPeerPath) {
  Diamond d;
  const Simulator sim(d.net, d.attachments);
  const std::vector<Injection> schedule{{0.0, 0, false}, {360.0, 1, false}};
  const RoutingState state = sim.run(schedule, 1);
  // Each tier-1 must keep its own customer route (LP 300) rather than the
  // peer-learned path through the other tier-1 (LP 200).
  ASSERT_NE(state.best(d.t1), nullptr);
  EXPECT_FALSE(state.best(d.t1)->neighbor.valid());  // direct origin route
  ASSERT_NE(state.best(d.t2), nullptr);
  EXPECT_FALSE(state.best(d.t2)->neighbor.valid());
}

TEST(Simulator, ArrivalOrderBreaksTieAtStub) {
  Diamond d(/*stub_prefers_oldest=*/true);
  const Simulator sim(d.net, d.attachments);
  // Both paths have LP 100 and length 2 at the stub; the tie goes to the
  // earlier announcement.
  const std::vector<Injection> a_first{{0.0, 0, false}, {360.0, 1, false}};
  const std::vector<Injection> b_first{{0.0, 1, false}, {360.0, 0, false}};
  const RoutingState sa = sim.run(a_first, 1);
  const RoutingState sb = sim.run(b_first, 1);
  EXPECT_EQ(sa.resolve(d.s, {0, 0}, 0).site, kSiteA);
  EXPECT_EQ(sb.resolve(d.s, {0, 0}, 0).site, kSiteB);
}

TEST(Simulator, RouterIdTieBreakIsOrderInsensitive) {
  Diamond d(/*stub_prefers_oldest=*/false);
  const Simulator sim(d.net, d.attachments);
  const std::vector<Injection> a_first{{0.0, 0, false}, {360.0, 1, false}};
  const std::vector<Injection> b_first{{0.0, 1, false}, {360.0, 0, false}};
  const SiteId site_a = sim.run(a_first, 1).resolve(d.s, {0, 0}, 0).site;
  const SiteId site_b = sim.run(b_first, 1).resolve(d.s, {0, 0}, 0).site;
  EXPECT_EQ(site_a, site_b);
  // T1 has the lower router id (10 < 20).
  EXPECT_EQ(site_a, kSiteA);
}

TEST(Simulator, GlobalAblationDisablesOldestStep) {
  Diamond d(/*stub_prefers_oldest=*/true);
  SimulatorOptions opts;
  opts.arrival_order_tiebreak = false;
  const Simulator sim(d.net, d.attachments, opts);
  const std::vector<Injection> b_first{{0.0, 1, false}, {360.0, 0, false}};
  // Even though B was announced first, router-id now decides (T1 wins).
  EXPECT_EQ(sim.run(b_first, 1).resolve(d.s, {0, 0}, 0).site, kSiteA);
}

TEST(Simulator, WithdrawFailsOverToOtherSite) {
  Diamond d;
  const Simulator sim(d.net, d.attachments);
  const std::vector<Injection> schedule{
      {0.0, 0, false}, {360.0, 1, false}, {720.0, 0, true}};
  const RoutingState state = sim.run(schedule, 1);
  const ResolvedPath path = state.resolve(d.s, {0, 0}, 0);
  ASSERT_TRUE(path.reachable);
  EXPECT_EQ(path.site, kSiteB);
}

TEST(Simulator, WithdrawingEverythingMakesPrefixUnreachable) {
  Diamond d;
  const Simulator sim(d.net, d.attachments);
  const std::vector<Injection> schedule{
      {0.0, 0, false}, {360.0, 0, true}};
  const RoutingState state = sim.run(schedule, 1);
  EXPECT_EQ(state.best(d.s), nullptr);
  EXPECT_FALSE(state.resolve(d.s, {0, 0}, 0).reachable);
}

TEST(Simulator, ShorterAsPathWinsRegardlessOfOrder) {
  // S buys from T1 directly and from T2 via a middle transit: the T1 path
  // is shorter, so announcing T2's site first must not matter.
  MiniWorld w;
  const AsId t1 = w.tier1("T1");
  const AsId t2 = w.tier1("T2");
  const AsId mid = w.transit();
  const AsId s = w.stub();
  w.provide(t2, mid);
  w.provide(t1, s);
  w.provide(mid, s);
  const topo::Internet net = w.finish();
  const std::vector<OriginAttachment> at{
      MiniWorld::transit_attach(kSiteA, t1),
      MiniWorld::transit_attach(kSiteB, t2)};
  const Simulator sim(net, at);
  const std::vector<Injection> b_first{{0.0, 1, false}, {360.0, 0, false}};
  const RoutingState state = sim.run(b_first, 1);
  EXPECT_EQ(state.resolve(s, {0, 0}, 0).site, kSiteA);
}

TEST(Simulator, PeerRouteNotExportedUpward) {
  // Origin peers with transit P; P's *provider* T1 must not learn the
  // route from P (valley-free), so an unrelated stub under T1 still goes
  // to the transit site.
  MiniWorld w;
  const AsId t1 = w.tier1("T1");
  const AsId t2 = w.tier1("T2");
  const AsId p = w.transit();
  const AsId other = w.stub();
  w.provide(t1, p);
  w.provide(t1, other);
  const topo::Internet net = w.finish();
  const std::vector<OriginAttachment> at{
      MiniWorld::transit_attach(kSiteA, t2),
      MiniWorld::peer_attach(kSiteB, p)};
  const Simulator sim(net, at);
  const std::vector<Injection> schedule{{0.0, 0, false}, {360.0, 1, false}};
  const RoutingState state = sim.run(schedule, 1);
  // P itself prefers the peer route (LP 200 vs provider 100).
  EXPECT_EQ(state.resolve(p, {0, 0}, 0).site, kSiteB);
  // T1 must not have a rib entry from P.
  for (const RibEntry& e : state.rib(t1)) {
    if (e.present) EXPECT_NE(e.neighbor, p);
  }
  // The unrelated stub reaches the transit site via T1 -> T2.
  EXPECT_EQ(state.resolve(other, {0, 0}, 0).site, kSiteA);
}

TEST(Simulator, PeerCatchmentCoversCustomerCone) {
  // Origin peers with transit P which has customer C: C reaches the peer
  // site through P (shorter+cheaper for P).
  MiniWorld w;
  const AsId t1 = w.tier1("T1");
  const AsId p = w.transit();
  const AsId c = w.stub();
  w.provide(t1, p);
  w.provide(p, c);
  const topo::Internet net = w.finish();
  const std::vector<OriginAttachment> at{
      MiniWorld::transit_attach(kSiteA, t1),
      MiniWorld::peer_attach(kSiteB, p)};
  const Simulator sim(net, at);
  const std::vector<Injection> schedule{{0.0, 0, false}, {360.0, 1, false}};
  const RoutingState state = sim.run(schedule, 1);
  EXPECT_EQ(state.resolve(c, {0, 0}, 0).site, kSiteB);
}

TEST(Simulator, SameAsSecondSiteDoesNotChangeAdvertisements) {
  // Two sites behind the same tier-1: the second announcement must not
  // trigger any new AS-level export (the paper's two-level separation).
  MiniWorld w;
  const AsId t1 = w.tier1("T1");
  const AsId t2 = w.tier1("T2");
  (void)t2;
  const AsId s = w.stub();
  w.provide(t1, s);
  const topo::Internet net = w.finish();
  const std::vector<OriginAttachment> at{
      MiniWorld::transit_attach(kSiteA, t1),
      MiniWorld::transit_attach(kSiteB, t1)};
  const Simulator sim(net, at);

  const std::vector<Injection> one{{0.0, 0, false}};
  const std::vector<Injection> both{{0.0, 0, false}, {360.0, 1, false}};
  const RoutingState s1 = sim.run(one, 1);
  const RoutingState s2 = sim.run(both, 1);
  // The second injection adds exactly one event (the host AS install);
  // nothing propagates further.
  EXPECT_EQ(s2.events_processed(), s1.events_processed() + 1);
}

TEST(Simulator, MultipathSplitsAcrossEqualRoutes) {
  Diamond d;
  d.net.graph.node_mut(d.s).multipath = true;
  const Simulator sim(d.net, d.attachments);
  const std::vector<Injection> schedule{{0.0, 0, false}, {360.0, 1, false}};
  const RoutingState state = sim.run(schedule, 1);
  ASSERT_EQ(state.best_set(d.s).equal_best.size(), 2u);
  bool saw_a = false;
  bool saw_b = false;
  for (std::uint64_t flow = 0; flow < 64; ++flow) {
    const SiteId site = state.resolve(d.s, {0, 0}, flow).site;
    saw_a |= site == kSiteA;
    saw_b |= site == kSiteB;
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

TEST(Simulator, ResolveIsDeterministicPerFlow) {
  Diamond d;
  d.net.graph.node_mut(d.s).multipath = true;
  const Simulator sim(d.net, d.attachments);
  const std::vector<Injection> schedule{{0.0, 0, false}, {360.0, 1, false}};
  const RoutingState state = sim.run(schedule, 1);
  for (std::uint64_t flow = 0; flow < 16; ++flow) {
    EXPECT_EQ(state.resolve(d.s, {0, 0}, flow).site,
              state.resolve(d.s, {0, 0}, flow).site);
  }
}

TEST(Simulator, SameNonceSameOutcome) {
  Diamond d;
  const Simulator sim(d.net, d.attachments);
  // Simultaneous announcement: outcome depends on jitter, but the same
  // nonce must reproduce it exactly.
  const std::vector<Injection> simultaneous{{0.0, 0, false}, {0.0, 1, false}};
  const SiteId first = sim.run(simultaneous, 42).resolve(d.s, {0, 0}, 0).site;
  const SiteId again = sim.run(simultaneous, 42).resolve(d.s, {0, 0}, 0).site;
  EXPECT_EQ(first, again);
}

TEST(Simulator, InjectionsMustBeSorted) {
  Diamond d;
  const Simulator sim(d.net, d.attachments);
  const std::vector<Injection> bad{{360.0, 0, false}, {0.0, 1, false}};
  EXPECT_THROW((void)sim.run(bad, 1), std::invalid_argument);
}

TEST(Simulator, AnnounceSequenceHelperMatchesManualSchedule) {
  Diamond d;
  const Simulator sim(d.net, d.attachments);
  const std::vector<AttachmentIndex> order{1, 0};
  const RoutingState via_helper = sim.announce_sequence(order, 360.0, 7);
  const std::vector<Injection> manual{{0.0, 1, false}, {360.0, 0, false}};
  const RoutingState via_manual = sim.run(manual, 7);
  EXPECT_EQ(via_helper.resolve(d.s, {0, 0}, 0).site,
            via_manual.resolve(d.s, {0, 0}, 0).site);
  EXPECT_EQ(via_helper.events_processed(), via_manual.events_processed());
}

TEST(Simulator, StabilizesOnLargerRandomTopology) {
  topo::InternetParams params;
  params.regional_transit_count = 15;
  params.access_transit_count = 20;
  params.stub_count = 150;
  params.extra_pops_per_tier1_min = 2;
  params.extra_pops_per_tier1_max = 4;
  params.seed = 99;
  const topo::Internet net = topo::build_internet(params);
  std::vector<OriginAttachment> at;
  for (std::size_t i = 0; i < net.tier1s.size(); ++i) {
    bgp::OriginAttachment a;
    a.site = SiteId{static_cast<SiteId::underlying_type>(i)};
    a.neighbor = net.tier1s[i];
    a.neighbor_is = topo::Relation::kProvider;
    a.where = net.pops.network(net.tier1s[i]).pop(0).where;
    at.push_back(a);
  }
  const Simulator sim(net, at);
  std::vector<Injection> schedule;
  for (std::size_t i = 0; i < at.size(); ++i) {
    schedule.push_back({static_cast<double>(i) * 360.0,
                        static_cast<AttachmentIndex>(i), false});
  }
  const RoutingState state = sim.run(schedule, 5);
  // Every AS must have a route (tier-1 customer routes reach everyone).
  std::size_t reachable = 0;
  for (std::size_t i = 0; i < net.graph.as_count(); ++i) {
    if (state.best(AsId{static_cast<AsId::underlying_type>(i)}) != nullptr) {
      ++reachable;
    }
  }
  EXPECT_EQ(reachable, net.graph.as_count());
}

}  // namespace
}  // namespace anyopt::bgp
