// Convergence and withdrawal dynamics of the propagation engine.

#include <gtest/gtest.h>

#include "anycast/config.h"
#include "anycast/world.h"
#include "bgp/simulator.h"
#include "support/mini_world.h"

namespace anyopt::bgp {
namespace {

using anyopt::testing::MiniWorld;

constexpr SiteId kSiteA{0};
constexpr SiteId kSiteB{1};

TEST(Convergence, EventCountScalesWithTopologyNotTime) {
  // Announcing the same site twice as far apart in time as you like must
  // not add events: convergence is event-driven, not clock-driven.
  MiniWorld w;
  const AsId t1 = w.tier1("T1");
  const AsId s = w.stub();
  w.provide(t1, s);
  const topo::Internet net = w.finish();
  const std::vector<OriginAttachment> at{
      MiniWorld::transit_attach(kSiteA, t1)};
  const Simulator sim(net, at);
  const std::vector<Injection> near{{0.0, 0, false}};
  const std::vector<Injection> far{{0.0, 0, false}};
  EXPECT_EQ(sim.run(near, 1).events_processed(),
            sim.run(far, 1).events_processed());
}

TEST(Convergence, ConvergedTimeTracksLastInjection) {
  MiniWorld w;
  const AsId t1 = w.tier1("T1");
  const AsId t2 = w.tier1("T2");
  const AsId s = w.stub();
  w.provide(t1, s);
  w.provide(t2, s);
  const topo::Internet net = w.finish();
  const std::vector<OriginAttachment> at{
      MiniWorld::transit_attach(kSiteA, t1),
      MiniWorld::transit_attach(kSiteB, t2)};
  const Simulator sim(net, at);
  const std::vector<Injection> schedule{{0.0, 0, false},
                                        {500.0, 1, false}};
  const RoutingState state = sim.run(schedule, 1);
  EXPECT_GT(state.converged_at_s(), 500.0);
  EXPECT_LT(state.converged_at_s(), 560.0);  // converges within a minute
}

TEST(Convergence, WithdrawCleansEveryRib) {
  // After announce + withdraw of the only site, no AS may retain a route.
  auto world = anycast::World::create(anycast::WorldParams::test_scale(61));
  std::vector<Injection> schedule{
      {0.0, world->deployment().transit_attachment(SiteId{0}), false},
      {360.0, world->deployment().transit_attachment(SiteId{0}), true}};
  const RoutingState state = world->simulator().run(schedule, 1);
  for (std::size_t i = 0; i < world->internet().graph.as_count(); ++i) {
    EXPECT_EQ(state.best(AsId{static_cast<AsId::underlying_type>(i)}),
              nullptr)
        << "AS " << i << " kept a route after withdrawal";
  }
}

TEST(Convergence, ReAnnounceAfterWithdrawRestartsArrivalOrder) {
  // A, B announced; then A withdrawn and re-announced: A is now the NEWER
  // route everywhere, so arrival-tied clients flip to B.
  MiniWorld w;
  const AsId t1 = w.tier1("T1", 10);
  const AsId t2 = w.tier1("T2", 20);
  const AsId s = w.stub(30);
  w.provide(t1, s);
  w.provide(t2, s);
  const topo::Internet net = w.finish();
  const std::vector<OriginAttachment> at{
      MiniWorld::transit_attach(kSiteA, t1),
      MiniWorld::transit_attach(kSiteB, t2)};
  const Simulator sim(net, at);
  const std::vector<Injection> flap{{0.0, 0, false},
                                    {360.0, 1, false},
                                    {720.0, 0, true},
                                    {1080.0, 0, false}};
  const RoutingState state = sim.run(flap, 1);
  EXPECT_EQ(state.resolve(s, {0, 0}, 0).site, kSiteB);
}

TEST(Convergence, RepeatedFlapsAlwaysReconverge) {
  auto world = anycast::World::create(anycast::WorldParams::test_scale(62));
  std::vector<Injection> schedule;
  double t = 0;
  const auto a0 = world->deployment().transit_attachment(SiteId{0});
  const auto a1 = world->deployment().transit_attachment(SiteId{4});
  schedule.push_back({t += 360, a0, false});
  schedule.push_back({t += 360, a1, false});
  for (int i = 0; i < 3; ++i) {
    schedule.push_back({t += 360, a0, true});
    schedule.push_back({t += 360, a0, false});
  }
  const RoutingState state = world->simulator().run(schedule, 1);
  // Everyone must still have a route (A is announced at the end).
  std::size_t reachable = 0;
  for (std::uint32_t i = 0; i < world->targets().size(); ++i) {
    const auto& target = world->targets().target(TargetId{i});
    reachable += state.resolve(target.as, target.where, i).reachable;
  }
  EXPECT_EQ(reachable, world->targets().size());
}

TEST(Convergence, StaleWithdrawIsIgnored) {
  // Withdrawing a never-announced attachment must be a no-op.
  MiniWorld w;
  const AsId t1 = w.tier1("T1");
  const AsId s = w.stub();
  w.provide(t1, s);
  const topo::Internet net = w.finish();
  const std::vector<OriginAttachment> at{
      MiniWorld::transit_attach(kSiteA, t1),
      MiniWorld::transit_attach(kSiteB, t1)};
  const Simulator sim(net, at);
  const std::vector<Injection> schedule{{0.0, 0, false}, {360.0, 1, true}};
  const RoutingState state = sim.run(schedule, 1);
  ASSERT_TRUE(state.resolve(s, {0, 0}, 0).reachable);
  EXPECT_EQ(state.resolve(s, {0, 0}, 0).site, kSiteA);
}

TEST(Convergence, FilteredAttachmentNeverInjects) {
  MiniWorld w;
  const AsId t1 = w.tier1("T1");
  const AsId s = w.stub();
  w.provide(t1, s);
  const topo::Internet net = w.finish();
  std::vector<OriginAttachment> at{MiniWorld::transit_attach(kSiteA, t1)};
  at[0].filtered = true;
  const Simulator sim(net, at);
  const std::vector<Injection> schedule{{0.0, 0, false}};
  const RoutingState state = sim.run(schedule, 1);
  EXPECT_EQ(state.events_processed(), 0u);
  EXPECT_FALSE(state.resolve(s, {0, 0}, 0).reachable);
}

}  // namespace
}  // namespace anyopt::bgp
