// Direct property tests of the paper's Appendix A theory on the simulator.
//
// Lemma 2 / Lemma 3: in the local-preference and shortest-path models, if
// site B loses to site A in the pairwise experiment, B keeps losing for
// that client when more sites are enabled.  Theorems A.1/A.2 follow: the
// pairwise tournament is transitive and predicts every subset.
//
// The models require source-oblivious selection, so these sweeps run on
// "clean" worlds: no deviant import policies, no multipath, and router-id
// (neighbor_ID) tie-breaking — exactly the theorem's (AS_PATH,
// neighbor_ID) selector.  Announcement arrival order is then irrelevant,
// which the tests exploit by announcing simultaneously.

#include <gtest/gtest.h>

#include <map>

#include "anycast/world.h"
#include "bgp/simulator.h"

namespace anyopt::bgp {
namespace {

anycast::WorldParams clean_params(std::uint64_t seed) {
  anycast::WorldParams params = anycast::WorldParams::test_scale(seed);
  params.internet.deviant_fraction = 0;
  params.internet.multipath_fraction = 0;
  params.internet.oldest_pref_fraction = 0;  // (AS_PATH, neighbor_ID) model
  params.internet.transit_peer_prob = 0;     // assumption (a) of §4.1
  return params;
}

class LemmaTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    world_ = anycast::World::create(clean_params(GetParam()));
  }

  /// Winner site for every target under the given enabled site set.
  std::map<std::uint32_t, SiteId> winners(const std::vector<SiteId>& sites) {
    std::vector<Injection> schedule;
    for (const SiteId s : sites) {
      schedule.push_back(
          {0.0, world_->deployment().transit_attachment(s), false});
    }
    const RoutingState state = world_->simulator().run(schedule, 1);
    std::map<std::uint32_t, SiteId> out;
    for (std::size_t t = 0; t < world_->targets().size(); ++t) {
      const auto& target = world_->targets().target(
          TargetId{static_cast<TargetId::underlying_type>(t)});
      const ResolvedPath path = state.resolve(target.as, target.where, t);
      if (path.reachable) {
        out[static_cast<std::uint32_t>(t)] = path.site;
      }
    }
    return out;
  }

  std::unique_ptr<anycast::World> world_;
};

TEST_P(LemmaTest, PairwiseLoserKeepsLosingInSupersets) {
  // Pairwise A vs B (one site per distinct provider so the comparison is
  // at the AS level), then supersets including both.
  const SiteId a{0};   // Atlanta / Telia
  const SiteId b{3};   // Singapore / TATA
  const auto pair_winner = winners({a, b});

  const std::vector<std::vector<SiteId>> supersets = {
      {a, b, SiteId{4}},
      {a, b, SiteId{4}, SiteId{9}},
      {a, b, SiteId{4}, SiteId{9}, SiteId{5}, SiteId{2}},
  };
  for (const auto& superset : supersets) {
    const auto super_winner = winners(superset);
    std::size_t checked = 0;
    for (const auto& [t, site] : super_winner) {
      const auto it = pair_winner.find(t);
      if (it == pair_winner.end()) continue;
      ++checked;
      // Lemma 2: if the client picked A over B pairwise, it must not pick
      // B once more sites are on (it may pick A or any new site).
      if (it->second == a) {
        EXPECT_NE(site, b) << "target " << t << " resurrected the loser";
      } else if (it->second == b) {
        EXPECT_NE(site, a) << "target " << t << " resurrected the loser";
      }
    }
    EXPECT_GT(checked, world_->targets().size() / 2);
  }
}

TEST_P(LemmaTest, PairwiseTournamentIsTransitiveAndPredictive) {
  // Theorem A.2 end-to-end on three single-provider sites: build the
  // tournament from the three pairwise experiments, check transitivity,
  // and verify the predicted winner matches the three-site deployment.
  const std::vector<SiteId> sites{SiteId{0}, SiteId{3}, SiteId{4}};
  const auto ab = winners({sites[0], sites[1]});
  const auto ac = winners({sites[0], sites[2]});
  const auto bc = winners({sites[1], sites[2]});
  const auto abc = winners(sites);

  std::size_t predicted = 0;
  std::size_t correct = 0;
  std::size_t cyclic = 0;
  for (const auto& [t, actual] : abc) {
    const auto i_ab = ab.find(t);
    const auto i_ac = ac.find(t);
    const auto i_bc = bc.find(t);
    if (i_ab == ab.end() || i_ac == ac.end() || i_bc == bc.end()) continue;
    // Count wins per site across the three pairwise results.
    std::map<SiteId, int> wins;
    ++wins[i_ab->second];
    ++wins[i_ac->second];
    ++wins[i_bc->second];
    // Transitive iff some site won both of its comparisons.
    SiteId champion;
    for (const auto& [site, n] : wins) {
      if (n == 2) champion = site;
    }
    if (!champion.valid()) {
      ++cyclic;
      continue;
    }
    ++predicted;
    correct += champion == actual;
  }
  ASSERT_GT(predicted, 0u);
  // Theorem A.1(i): cycles must be (essentially) absent.
  EXPECT_LT(static_cast<double>(cyclic) /
                static_cast<double>(predicted + cyclic),
            0.02);
  // Theorem A.1(ii): the total order predicts the subset winner.
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(predicted),
            0.985);
}

TEST_P(LemmaTest, SimultaneousAnnouncementOrderIrrelevantUnderNeighborId) {
  // With router-id tie-breaking everywhere, reversing announcement order
  // (even with spacing) must not change any catchment.
  const SiteId a{0};
  const SiteId b{4};
  std::vector<Injection> forward{
      {0.0, world_->deployment().transit_attachment(a), false},
      {360.0, world_->deployment().transit_attachment(b), false}};
  std::vector<Injection> backward{
      {0.0, world_->deployment().transit_attachment(b), false},
      {360.0, world_->deployment().transit_attachment(a), false}};
  const RoutingState sf = world_->simulator().run(forward, 2);
  const RoutingState sb = world_->simulator().run(backward, 2);
  std::size_t diff = 0;
  std::size_t total = 0;
  for (std::size_t t = 0; t < world_->targets().size(); ++t) {
    const auto& target = world_->targets().target(
        TargetId{static_cast<TargetId::underlying_type>(t)});
    const auto pf = sf.resolve(target.as, target.where, t);
    const auto pb = sb.resolve(target.as, target.where, t);
    if (!pf.reachable || !pb.reachable) continue;
    ++total;
    diff += pf.site != pb.site;
  }
  ASSERT_GT(total, 0u);
  // Residual differences can only come from close BGP races whose winner
  // shifts the data path (multiple stable states); they must be rare.
  EXPECT_LT(static_cast<double>(diff) / static_cast<double>(total), 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LemmaTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace anyopt::bgp
