#include <gtest/gtest.h>

#include "anycast/config.h"
#include "anycast/world.h"
#include "bgp/simulator.h"
#include "support/mini_world.h"

namespace anyopt::bgp {
namespace {

using anyopt::testing::MiniWorld;

constexpr SiteId kSiteA{0};
constexpr SiteId kSiteB{1};

TEST(Explain, AgreesWithResolve) {
  auto world = anycast::World::create(anycast::WorldParams::test_scale(31));
  const auto cfg = anycast::AnycastConfig::all_sites(world->deployment());
  const auto schedule = cfg.schedule(world->deployment());
  const RoutingState state = world->simulator().run(schedule, 1);
  for (std::uint32_t t = 0; t < 250; ++t) {
    const auto& target = world->targets().target(TargetId{t});
    const ResolvedPath path = state.resolve(target.as, target.where, t);
    const Explanation why = state.explain(target.as, target.where, t);
    ASSERT_EQ(why.reachable, path.reachable);
    if (path.reachable) {
      EXPECT_EQ(why.site, path.site);
      EXPECT_EQ(why.hops.size(), path.as_path.size());
      for (std::size_t h = 0; h < why.hops.size(); ++h) {
        EXPECT_EQ(why.hops[h].as, path.as_path[h]);
      }
    }
  }
}

TEST(Explain, DetectsArrivalOrderDecision) {
  // Diamond with a tie at the stub: the stub's hop must report the
  // oldest-route step as decisive.
  MiniWorld w;
  const AsId t1 = w.tier1("T1", 10);
  const AsId t2 = w.tier1("T2", 20);
  const AsId s = w.stub(30);
  w.provide(t1, s);
  w.provide(t2, s);
  const topo::Internet net = w.finish();
  const std::vector<OriginAttachment> at{
      MiniWorld::transit_attach(kSiteA, t1),
      MiniWorld::transit_attach(kSiteB, t2)};
  const Simulator sim(net, at);
  const std::vector<Injection> schedule{{0.0, 0, false}, {360.0, 1, false}};
  const RoutingState state = sim.run(schedule, 1);
  const Explanation why = state.explain(s, {0, 0}, 0);
  ASSERT_TRUE(why.reachable);
  ASSERT_FALSE(why.hops.empty());
  EXPECT_EQ(why.hops.front().candidates, 2u);
  EXPECT_EQ(why.hops.front().hardest_step, DecisionStep::kOldestRoute);
  EXPECT_TRUE(why.order_dependent());
}

TEST(Explain, SingleRouteNeedsNoTieBreak) {
  MiniWorld w;
  const AsId t1 = w.tier1("T1", 10);
  const AsId s = w.stub(30);
  w.provide(t1, s);
  const topo::Internet net = w.finish();
  const std::vector<OriginAttachment> at{
      MiniWorld::transit_attach(kSiteA, t1)};
  const Simulator sim(net, at);
  const std::vector<Injection> schedule{{0.0, 0, false}};
  const Explanation why =
      sim.run(schedule, 1).explain(s, {0, 0}, 0);
  ASSERT_TRUE(why.reachable);
  EXPECT_EQ(why.hops.front().candidates, 1u);
  EXPECT_EQ(why.hops.front().hardest_step, DecisionStep::kLocalPref);
  EXPECT_FALSE(why.order_dependent());
}

TEST(Explain, UnreachableIsReported) {
  MiniWorld w;
  const AsId t1 = w.tier1("T1", 10);
  const AsId s = w.stub(30);
  w.provide(t1, s);
  const topo::Internet net = w.finish();
  const std::vector<OriginAttachment> at{
      MiniWorld::transit_attach(kSiteA, t1)};
  const Simulator sim(net, at);
  const RoutingState state = sim.run(std::vector<Injection>{}, 1);
  const Explanation why = state.explain(s, {0, 0}, 0);
  EXPECT_FALSE(why.reachable);
  EXPECT_NE(why.to_string(net).find("unreachable"), std::string::npos);
}

TEST(Explain, RenderingMentionsSiteAndSteps) {
  MiniWorld w;
  const AsId t1 = w.tier1("CarrierOne", 10);
  const AsId t2 = w.tier1("CarrierTwo", 20);
  const AsId s = w.stub(30);
  w.provide(t1, s);
  w.provide(t2, s);
  const topo::Internet net = w.finish();
  const std::vector<OriginAttachment> at{
      MiniWorld::transit_attach(kSiteA, t1),
      MiniWorld::transit_attach(kSiteB, t2)};
  const Simulator sim(net, at);
  const std::vector<Injection> schedule{{0.0, 0, false}, {360.0, 1, false}};
  const Explanation why = sim.run(schedule, 1).explain(s, {0, 0}, 0);
  const std::string text = why.to_string(net);
  EXPECT_NE(text.find("catchment site 1"), std::string::npos) << text;
  EXPECT_NE(text.find("arrival order"), std::string::npos) << text;
  EXPECT_NE(text.find("anycast origin"), std::string::npos) << text;
  EXPECT_NE(text.find("CarrierOne"), std::string::npos) << text;
}

TEST(Explain, MultipathSplitIsFlagged) {
  MiniWorld w;
  const AsId t1 = w.tier1("T1", 10);
  const AsId t2 = w.tier1("T2", 20);
  const AsId s = w.stub(30);
  w.provide(t1, s);
  w.provide(t2, s);
  w.node(s).multipath = true;
  const topo::Internet net = w.finish();
  const std::vector<OriginAttachment> at{
      MiniWorld::transit_attach(kSiteA, t1),
      MiniWorld::transit_attach(kSiteB, t2)};
  const Simulator sim(net, at);
  const std::vector<Injection> schedule{{0.0, 0, false}, {360.0, 1, false}};
  const RoutingState state = sim.run(schedule, 1);
  bool saw_split = false;
  for (std::uint64_t flow = 0; flow < 8; ++flow) {
    const Explanation why = state.explain(s, {0, 0}, flow);
    saw_split |= why.hops.front().multipath_split;
  }
  EXPECT_TRUE(saw_split);
}

}  // namespace
}  // namespace anyopt::bgp
