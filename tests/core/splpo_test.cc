#include "core/splpo.h"

#include <gtest/gtest.h>

#include "netbase/rng.h"

namespace anyopt::core {
namespace {

/// Small instance where clients prefer nearer sites (costs consistent with
/// preferences): 3 sites on a line, 6 clients.
SplpoInstance line_instance() {
  SplpoInstance inst = SplpoInstance::make(3, 6);
  // site positions: 0, 5, 10; client positions: 0..10 step 2.
  const double site_pos[3] = {0, 5, 10};
  for (std::size_t c = 0; c < 6; ++c) {
    const double pos = static_cast<double>(c) * 2.0;
    std::vector<std::pair<double, std::uint32_t>> by_cost;
    for (std::uint32_t s = 0; s < 3; ++s) {
      const double cost = std::abs(pos - site_pos[s]);
      inst.set_cost(c, s, cost);
      by_cost.push_back({cost, s});
    }
    std::sort(by_cost.begin(), by_cost.end());
    for (const auto& [cost, s] : by_cost) inst.preference[c].push_back(s);
  }
  return inst;
}

/// Random instance where preferences are NOT aligned with costs (the BGP
/// situation): clients may prefer expensive sites.
SplpoInstance random_instance(std::size_t sites, std::size_t clients,
                              std::uint64_t seed) {
  SplpoInstance inst = SplpoInstance::make(sites, clients);
  Rng rng{seed};
  for (std::size_t c = 0; c < clients; ++c) {
    std::vector<std::uint32_t> prefs(sites);
    for (std::uint32_t s = 0; s < sites; ++s) {
      inst.set_cost(c, s, rng.uniform(1.0, 100.0));
      prefs[s] = s;
    }
    rng.shuffle(prefs);
    inst.preference[c] = prefs;
  }
  return inst;
}

/// Reference brute force: best open set over all subsets.
SplpoSolution brute_force(const SplpoInstance& inst) {
  SplpoSolution best;
  for (std::uint64_t mask = 1; mask < (1u << inst.site_count); ++mask) {
    std::vector<std::uint32_t> open;
    for (std::uint32_t s = 0; s < inst.site_count; ++s) {
      if (mask >> s & 1) open.push_back(s);
    }
    SplpoSolution sol = evaluate_open_set(inst, open);
    if (sol.feasible && sol.total_cost < best.total_cost) best = sol;
  }
  return best;
}

TEST(SplpoInstance, ValidateCatchesBadPreference) {
  SplpoInstance inst = SplpoInstance::make(2, 1);
  inst.preference[0] = {0, 5};  // out of range
  EXPECT_FALSE(inst.validate().ok());
  inst.preference[0] = {0, 0};  // duplicate
  EXPECT_FALSE(inst.validate().ok());
  inst.preference[0] = {0, 1};
  EXPECT_TRUE(inst.validate().ok());
}

TEST(Evaluate, ClientsGoToMostPreferredOpenSite) {
  SplpoInstance inst = SplpoInstance::make(3, 1);
  inst.set_cost(0, 0, 1.0);
  inst.set_cost(0, 1, 50.0);
  inst.set_cost(0, 2, 2.0);
  inst.preference[0] = {1, 2, 0};  // BGP prefers the expensive site!
  const auto all = evaluate_open_set(inst, {0, 1, 2});
  EXPECT_EQ(all.assignment[0], 1);  // preference, not cost, decides
  EXPECT_DOUBLE_EQ(all.total_cost, 50.0);
  // Closing site 1 reroutes to the next preference.
  const auto some = evaluate_open_set(inst, {0, 2});
  EXPECT_EQ(some.assignment[0], 2);
  EXPECT_DOUBLE_EQ(some.total_cost, 2.0);
}

TEST(Evaluate, UnservedClientMakesInfeasible) {
  SplpoInstance inst = SplpoInstance::make(2, 1);
  inst.set_cost(0, 0, 1.0);
  inst.preference[0] = {0};  // never uses site 1
  const auto sol = evaluate_open_set(inst, {1});
  EXPECT_FALSE(sol.feasible);
  EXPECT_EQ(sol.assignment[0], -1);
}

TEST(Evaluate, CapacityViolationDetected) {
  SplpoInstance inst = SplpoInstance::make(2, 3);
  for (std::size_t c = 0; c < 3; ++c) {
    inst.set_cost(c, 0, 1.0);
    inst.set_cost(c, 1, 2.0);
    inst.preference[c] = {0, 1};
  }
  inst.capacity[0] = 2.0;  // three unit demands won't fit
  EXPECT_FALSE(evaluate_open_set(inst, {0}).feasible);
  // Opening both does NOT help: preferences still send everyone to 0.
  EXPECT_FALSE(evaluate_open_set(inst, {0, 1}).feasible);
  // Closing the popular site is the only feasible choice.
  EXPECT_TRUE(evaluate_open_set(inst, {1}).feasible);
}

TEST(Exhaustive, MatchesBruteForceOnLineInstance) {
  const SplpoInstance inst = line_instance();
  const auto exact = solve_exhaustive(inst);
  const auto reference = brute_force(inst);
  ASSERT_TRUE(exact.feasible);
  EXPECT_DOUBLE_EQ(exact.total_cost, reference.total_cost);
}

class SplpoRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SplpoRandomTest, ExhaustiveMatchesBruteForce) {
  const SplpoInstance inst = random_instance(5, 12, GetParam());
  const auto exact = solve_exhaustive(inst);
  const auto reference = brute_force(inst);
  ASSERT_TRUE(exact.feasible);
  EXPECT_NEAR(exact.total_cost, reference.total_cost, 1e-9);
}

TEST_P(SplpoRandomTest, LocalSearchNeverBeatsExactAndIsFeasible) {
  const SplpoInstance inst = random_instance(6, 15, GetParam() ^ 0xF00);
  const auto exact = solve_exhaustive(inst);
  const auto local = solve_local_search(inst);
  ASSERT_TRUE(local.feasible);
  EXPECT_GE(local.total_cost, exact.total_cost - 1e-9);
}

TEST_P(SplpoRandomTest, GreedyIsFeasibleAndBounded) {
  const SplpoInstance inst = random_instance(6, 15, GetParam() ^ 0xABC);
  const auto greedy = solve_greedy(inst, 6);
  ASSERT_TRUE(greedy.feasible);
  const auto exact = solve_exhaustive(inst);
  EXPECT_GE(greedy.total_cost, exact.total_cost - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplpoRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Exhaustive, RespectsCardinalityBounds) {
  const SplpoInstance inst = line_instance();
  ExhaustiveOptions opts;
  opts.min_open = 2;
  opts.max_open = 2;
  const auto sol = solve_exhaustive(inst, opts);
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.open_sites.size(), 2u);
  EXPECT_EQ(sol.configurations_evaluated, 3u);  // C(3,2)
}

TEST(Exhaustive, ConfigurationBudgetStopsEarly) {
  const SplpoInstance inst = random_instance(10, 5, 99);
  ExhaustiveOptions opts;
  opts.max_configurations = 7;
  const auto sol = solve_exhaustive(inst, opts);
  EXPECT_LE(sol.configurations_evaluated, 7u);
}

TEST(LocalSearch, ImprovesOnBadSeed) {
  const SplpoInstance inst = line_instance();
  // Seed with the single middle site; optimum for 6 clients on a line is
  // opening everything (costs are pure distance, no opening cost).
  const auto seeded = solve_local_search(inst, {1});
  const auto exact = solve_exhaustive(inst);
  EXPECT_NEAR(seeded.total_cost, exact.total_cost, 1e-9);
}

// --- Appendix B.1: the dominating-set reduction -------------------------

std::vector<std::vector<std::uint32_t>> path_graph(std::size_t n) {
  std::vector<std::vector<std::uint32_t>> adj(n);
  for (std::uint32_t v = 0; v + 1 < n; ++v) {
    adj[v].push_back(v + 1);
    adj[v + 1].push_back(v);
  }
  return adj;
}

TEST(DominatingSet, BruteForceKnownValues) {
  // Path of 6 vertices: minimum dominating set has size 2 ({1, 4}).
  const auto adj = path_graph(6);
  EXPECT_FALSE(has_dominating_set(adj, 1));
  EXPECT_TRUE(has_dominating_set(adj, 2));
}

TEST(Gadget, ZeroCostIffDominatingSet) {
  const auto adj = path_graph(6);
  const SplpoInstance inst = dominating_set_gadget(adj);
  ASSERT_TRUE(inst.validate().ok());

  // K = 2 dominates: there must be a zero-cost solution opening K+1 sites.
  ExhaustiveOptions k3;
  k3.min_open = 3;
  k3.max_open = 3;
  const auto sol3 = solve_exhaustive(inst, k3);
  ASSERT_TRUE(sol3.feasible);
  EXPECT_DOUBLE_EQ(sol3.total_cost, 0.0);

  // K = 1 does not: with K+1 = 2 open sites the best cost is infinite.
  ExhaustiveOptions k2;
  k2.min_open = 2;
  k2.max_open = 2;
  const auto sol2 = solve_exhaustive(inst, k2);
  EXPECT_FALSE(sol2.feasible && sol2.total_cost == 0.0);
}

TEST(Gadget, AgreesWithBruteForceAcrossRandomGraphs) {
  Rng rng{123};
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 4 + rng.below(4);  // 4..7 vertices
    std::vector<std::vector<std::uint32_t>> adj(n);
    for (std::uint32_t a = 0; a < n; ++a) {
      for (std::uint32_t b = a + 1; b < n; ++b) {
        if (rng.chance(0.4)) {
          adj[a].push_back(b);
          adj[b].push_back(a);
        }
      }
    }
    const SplpoInstance inst = dominating_set_gadget(adj);
    for (std::size_t k = 1; k <= 3; ++k) {
      ExhaustiveOptions opts;
      opts.min_open = k + 1;
      opts.max_open = k + 1;
      const auto sol = solve_exhaustive(inst, opts);
      const bool zero_cost = sol.feasible && sol.total_cost == 0.0;
      EXPECT_EQ(zero_cost, has_dominating_set(adj, k))
          << "n=" << n << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace anyopt::core
