#include "core/peers.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "support/core_fixture.h"

namespace anyopt::core {
namespace {

using anyopt::testing::default_env;

class OnePassTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    baseline_ = new anycast::AnycastConfig(
        anycast::AnycastConfig::all_sites(default_env().world->deployment()));
    const OnePassPeerSelector selector(*default_env().orchestrator);
    result_ = new OnePassResult(selector.run(*baseline_));
  }
  static void TearDownTestSuite() {
    delete baseline_;
    delete result_;
  }
  static anycast::AnycastConfig* baseline_;
  static OnePassResult* result_;
};

anycast::AnycastConfig* OnePassTest::baseline_ = nullptr;
OnePassResult* OnePassTest::result_ = nullptr;

TEST_F(OnePassTest, MeasuresEveryPeerOnce) {
  const auto peers =
      default_env().world->deployment().all_peer_attachments();
  EXPECT_EQ(result_->peers.size(), peers.size());
  EXPECT_EQ(result_->experiments, peers.size());
}

TEST_F(OnePassTest, BaselineMeanIsPositive) {
  EXPECT_GT(result_->baseline_mean_rtt, 0.0);
}

TEST_F(OnePassTest, BeneficialFlagsMatchDeltas) {
  for (const PeerMeasurement& m : result_->peers) {
    if (m.beneficial) {
      EXPECT_LT(m.delta_ms, 0.0);
      EXPECT_GT(m.catchment_size, 0u);
    }
    EXPECT_NEAR(m.delta_ms, m.mean_rtt_ms - result_->baseline_mean_rtt,
                1e-9);
  }
}

TEST_F(OnePassTest, CatchmentRttsBelongToCatchment) {
  for (const PeerMeasurement& m : result_->peers) {
    EXPECT_LE(m.catchment_rtts.size(), m.catchment_size);
    for (const auto& [target, rtt] : m.catchment_rtts) {
      EXPECT_GE(rtt, 0.0);
      EXPECT_LT(target, default_env().world->targets().size());
    }
  }
}

TEST_F(OnePassTest, SomePeersUnreachable) {
  // The paper found only 72 of 104 peers attract any target.
  EXPECT_LT(result_->reachable_peers, result_->peers.size());
  EXPECT_GT(result_->reachable_peers, 0u);
}

TEST_F(OnePassTest, MostPeersHaveSmallCatchments) {
  // Fig. 7a: >80% of peers attract < 2.5% of targets.  Loosened for the
  // scaled test world.
  const double total = static_cast<double>(default_env().world->targets().size());
  std::size_t small = 0;
  for (const PeerMeasurement& m : result_->peers) {
    if (static_cast<double>(m.catchment_size) / total < 0.05) ++small;
  }
  EXPECT_GT(static_cast<double>(small) /
                static_cast<double>(result_->peers.size()),
            0.6);
}

TEST_F(OnePassTest, ChosenPeersAreBeneficial) {
  for (const bgp::AttachmentIndex chosen : result_->chosen) {
    const auto it = std::find_if(
        result_->peers.begin(), result_->peers.end(),
        [&](const PeerMeasurement& m) { return m.attachment == chosen; });
    ASSERT_NE(it, result_->peers.end());
    EXPECT_TRUE(it->beneficial);
  }
}

TEST_F(OnePassTest, GreedyPredictionNeverWorseThanBaseline) {
  EXPECT_LE(result_->predicted_mean_rtt, result_->baseline_mean_rtt + 1e-9);
}

TEST_F(OnePassTest, OutputConfigKeepsBaselineSites) {
  EXPECT_EQ(result_->with_beneficial_peers.announce_order,
            baseline_->announce_order);
  EXPECT_EQ(result_->with_beneficial_peers.enabled_peers, result_->chosen);
}

TEST_F(OnePassTest, DeployingChosenPeersDoesNotHurtMuch) {
  // The conservative estimate should translate into a real (if small)
  // improvement — or at worst a wash (§5.4).
  const measure::Census with_peers = default_env().orchestrator->measure(
      result_->with_beneficial_peers, 0xFEED);
  EXPECT_LT(with_peers.mean_rtt(), result_->baseline_mean_rtt + 2.0);
}

}  // namespace
}  // namespace anyopt::core
