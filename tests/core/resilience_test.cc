// Discovery resilience: with fault injection killing a fraction of campaign
// rounds, the requeue loop (`DiscoveryOptions::retry_rounds`) must converge
// the discovered preference tables to EXACTLY the fault-free order — not
// approximately.  This works because a requeued experiment keeps its
// content-derived nonce and bumps only the fault-layer attempt: a retry
// that survives reproduces the fault-free census bit for bit.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "anycast/world.h"
#include "core/discovery.h"
#include "core/preference.h"
#include "measure/orchestrator.h"
#include "netbase/fault.h"
#include "netbase/telemetry.h"

namespace anyopt::core {
namespace {

struct Env {
  std::unique_ptr<anycast::World> world;
  std::unique_ptr<measure::Orchestrator> calm;
  fault::FaultInjector injector{[] {
    fault::FaultPlan plan;
    plan.seed = 0x5E51;
    plan.experiment_failure_prob = 0.3;
    return plan;
  }()};
  std::unique_ptr<measure::Orchestrator> faulted;
};

Env& env() {
  static Env e = [] {
    Env out;
    out.world = anycast::World::create(anycast::WorldParams::test_scale(21));
    out.calm = std::make_unique<measure::Orchestrator>(*out.world);
    measure::OrchestratorOptions options;
    options.faults = &out.injector;
    out.faulted = std::make_unique<measure::Orchestrator>(*out.world, options);
    return out;
  }();
  return e;
}

/// Keeps telemetry state from leaking between suites in this binary.
class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override { force_off(); }
  void TearDown() override { force_off(); }
  static void force_off() {
    telemetry::set_enabled(false);
    telemetry::set_tracing(false);
    telemetry::Registry::global().reset();
  }
};

void expect_results_identical(const DiscoveryResult& a,
                              const DiscoveryResult& b) {
  EXPECT_EQ(a.provider_sites, b.provider_sites);
  EXPECT_EQ(a.provider_prefs.outcome, b.provider_prefs.outcome);
  ASSERT_EQ(a.site_prefs.size(), b.site_prefs.size());
  for (std::size_t p = 0; p < a.site_prefs.size(); ++p) {
    EXPECT_EQ(a.site_prefs[p].outcome, b.site_prefs[p].outcome)
        << "provider " << p;
  }
}

TEST_F(ResilienceTest, RequeueConvergesToFaultFreePreferenceOrder) {
  // 30% of campaign rounds fail outright.  With 8 retry rounds, per-spec
  // total-loss probability is 0.3^9 ≈ 2e-5 — for this campaign's size,
  // every experiment deterministically survives some attempt under the
  // plan's fixed seed, and the tables equal the calm run's EXACTLY.
  const DiscoveryResult want = Discovery(*env().calm).run();

  DiscoveryOptions options;
  options.retry_rounds = 8;
  const DiscoveryResult got = Discovery(*env().faulted, options).run();

  expect_results_identical(want, got);
  // The retries are real work: the faulted campaign ran more experiments.
  EXPECT_GT(got.experiments, want.experiments);
}

TEST_F(ResilienceTest, RequeuedCampaignIsReproducibleAcrossThreadCounts) {
  DiscoveryOptions options;
  options.retry_rounds = 8;
  options.threads = 1;
  const DiscoveryResult serial = Discovery(*env().faulted, options).run();
  for (const std::size_t threads : {2u, 4u}) {
    options.threads = threads;
    const DiscoveryResult parallel = Discovery(*env().faulted, options).run();
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(serial.experiments, parallel.experiments);
    expect_results_identical(serial, parallel);
  }
}

TEST_F(ResilienceTest, NoRetriesLeaveLostPairsUnknown) {
  // Partial-table tolerance: when every round fails and nothing requeues,
  // discovery must not invent preferences — every pair classifies kUnknown.
  fault::FaultPlan plan;
  plan.experiment_failure_prob = 1.0;
  const fault::FaultInjector always_fail{plan};
  measure::OrchestratorOptions options;
  options.faults = &always_fail;
  const measure::Orchestrator dead(*env().world, options);

  const DiscoveryResult got = Discovery(dead).run();
  for (const auto& pair : got.provider_prefs.outcome) {
    for (const PrefKind kind : pair) {
      ASSERT_EQ(kind, PrefKind::kUnknown);
    }
  }
  for (const PairwiseTable& table : got.site_prefs) {
    for (const auto& pair : table.outcome) {
      for (const PrefKind kind : pair) {
        ASSERT_EQ(kind, PrefKind::kUnknown);
      }
    }
  }
}

TEST_F(ResilienceTest, RequeueTelemetryCountsLostExperiments) {
  telemetry::set_enabled(true);
  auto& reg = telemetry::Registry::global();

  DiscoveryOptions options;
  options.retry_rounds = 8;
  (void)Discovery(*env().faulted, options).run();
  EXPECT_GT(reg.counter_value("discovery.requeued"), 0u);

  // A calm campaign requeues nothing.
  reg.reset();
  (void)Discovery(*env().calm, options).run();
  EXPECT_EQ(reg.counter_value("discovery.requeued"), 0u);
}

TEST_F(ResilienceTest, SiteLevelOrdinalsContinueTheProviderTimeline) {
  // A site failure scheduled past the provider-level specs must hit the
  // site-level campaign: the ordinal timeline spans run().  A failure at
  // ordinal 0, by contrast, hits the provider level.  Either way the full
  // run completes and classifies (possibly kUnknown for the failed site's
  // pairs) rather than crashing or hanging.
  fault::FaultPlan plan;
  plan.site_failures.push_back({SiteId{0}, 0, fault::kNever});
  const fault::FaultInjector injector{plan};
  measure::OrchestratorOptions options;
  options.faults = &injector;
  const measure::Orchestrator hurt(*env().world, options);

  const DiscoveryResult calm = Discovery(*env().calm).run();
  const DiscoveryResult got = Discovery(hurt).run();
  EXPECT_EQ(got.provider_sites, calm.provider_sites);
  EXPECT_EQ(got.provider_prefs.item_count, calm.provider_prefs.item_count);
}

}  // namespace
}  // namespace anyopt::core
