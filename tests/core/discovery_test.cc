#include "core/discovery.h"

#include <gtest/gtest.h>

#include "support/core_fixture.h"

namespace anyopt::core {
namespace {

using anyopt::testing::default_env;

TEST(Discovery, ProviderLevelExperimentCount) {
  // 6 providers -> C(6,2) = 15 pairs, x2 for the reversed order.
  Discovery disc(*default_env().orchestrator);
  std::size_t experiments = 0;
  const PairwiseTable table = disc.provider_level(&experiments);
  EXPECT_EQ(experiments, 30u);
  EXPECT_EQ(table.item_count, 6u);
  EXPECT_EQ(table.target_count, default_env().world->targets().size());
}

TEST(Discovery, NaiveModeHalvesExperiments) {
  DiscoveryOptions opts;
  opts.account_order = false;
  Discovery disc(*default_env().orchestrator, opts);
  std::size_t experiments = 0;
  (void)disc.provider_level(&experiments);
  EXPECT_EQ(experiments, 15u);
}

TEST(Discovery, SiteLevelExperimentCountMatchesTable1) {
  // Per-provider site counts (Telia 3, Zayo 2, TATA 2, GTT 2, NTT 4,
  // Sparkle 2) -> C's: 3+1+1+1+6+1 = 13 pairs, x2 orders.
  Discovery disc(*default_env().orchestrator);
  std::size_t experiments = 0;
  const auto tables = disc.site_level(&experiments);
  EXPECT_EQ(experiments, 26u);
  ASSERT_EQ(tables.size(), 6u);
}

TEST(Discovery, FlatSiteLevelIsQuadraticInSites) {
  DiscoveryOptions opts;
  opts.account_order = false;
  Discovery disc(*default_env().orchestrator, opts);
  std::size_t experiments = 0;
  const PairwiseTable table = disc.flat_site_level(&experiments);
  EXPECT_EQ(experiments, 105u);  // C(15,2)
  EXPECT_EQ(table.item_count, 15u);
}

TEST(Discovery, MostPreferencesAreUsable) {
  const auto& result = default_env().pipeline->discover();
  const PairwiseStats stats = tabulate(result.provider_prefs);
  const std::size_t total =
      stats.strict + stats.order_dependent + stats.inconsistent + stats.unknown;
  // Strict + order-dependent should dominate (the paper's §5.1 finding).
  EXPECT_GT(static_cast<double>(stats.strict + stats.order_dependent) /
                static_cast<double>(total),
            0.9);
  // And order dependence must actually occur (it is the paper's central
  // empirical discovery).
  EXPECT_GT(stats.order_dependent, 0u);
}

TEST(Discovery, SiteLevelHasNoOrderDependence) {
  // §4.2: "the order of BGP announcements ... does not have any effect on
  // a network's preference orders when the prefix announcements are from
  // different sites within the same AS."
  const auto& result = default_env().pipeline->discover();
  std::size_t order_dependent = 0;
  std::size_t total = 0;
  for (const auto& table : result.site_prefs) {
    const PairwiseStats stats = tabulate(table);
    order_dependent += stats.order_dependent;
    total += stats.strict + stats.order_dependent + stats.inconsistent +
             stats.unknown;
  }
  ASSERT_GT(total, 0u);
  // A small residue remains where the downstream BGP race (not the site
  // order itself) flips the ingress PoP; the paper reports zero, we accept
  // a few percent of noise.
  EXPECT_LT(static_cast<double>(order_dependent) / static_cast<double>(total),
            0.03);
}

TEST(Discovery, OrderFlipFractionWithinRange) {
  Discovery disc(*default_env().orchestrator);
  const double flip = disc.order_flip_fraction(ProviderId{0}, ProviderId{1});
  EXPECT_GE(flip, 0.0);
  EXPECT_LE(flip, 1.0);
}

TEST(Discovery, DeterministicForSameNonceBase) {
  DiscoveryOptions opts;
  opts.nonce_base = 777;
  Discovery a(*default_env().orchestrator, opts);
  Discovery b(*default_env().orchestrator, opts);
  std::size_t ea = 0;
  std::size_t eb = 0;
  const PairwiseTable ta = a.provider_level(&ea);
  const PairwiseTable tb = b.provider_level(&eb);
  EXPECT_EQ(ta.outcome, tb.outcome);
}

TEST(Discovery, RepresentativeDefaultsToFirstSiteOfProvider) {
  Discovery disc(*default_env().orchestrator);
  const auto& deployment = default_env().world->deployment();
  for (std::size_t p = 0; p < deployment.provider_count(); ++p) {
    const ProviderId provider{static_cast<ProviderId::underlying_type>(p)};
    EXPECT_EQ(disc.representative(provider),
              deployment.sites_of_provider(provider).front());
  }
}

TEST(Discovery, RepresentativeSiteChangeKeepsMostProviderPreferences) {
  // §4.3: "94.2% of the client networks on average do not change their
  // pairwise preferences" when the representative site varies.  The test
  // world is small, so we assert a looser bound.
  const auto& deployment = default_env().world->deployment();
  Discovery base(*default_env().orchestrator);
  std::size_t e = 0;
  const PairwiseTable table_a = base.provider_level(&e);

  DiscoveryOptions alt;
  alt.representatives.resize(deployment.provider_count());
  for (std::size_t p = 0; p < deployment.provider_count(); ++p) {
    const auto sites = deployment.sites_of_provider(
        ProviderId{static_cast<ProviderId::underlying_type>(p)});
    alt.representatives[p] = sites.back();  // switch to the last site
  }
  Discovery other(*default_env().orchestrator, alt);
  const PairwiseTable table_b = other.provider_level(&e);

  std::size_t same = 0;
  std::size_t comparable = 0;
  for (std::size_t pair = 0; pair < table_a.outcome.size(); ++pair) {
    for (std::size_t t = 0; t < table_a.target_count; ++t) {
      const PrefKind a = table_a.outcome[pair][t];
      const PrefKind b = table_b.outcome[pair][t];
      if (a == PrefKind::kUnknown || b == PrefKind::kUnknown) continue;
      ++comparable;
      if (a == b) ++same;
    }
  }
  ASSERT_GT(comparable, 0u);
  EXPECT_GT(static_cast<double>(same) / static_cast<double>(comparable), 0.8);
}

TEST(Discovery, FullRunBundlesEverything) {
  const auto& result = default_env().pipeline->discover();
  EXPECT_EQ(result.provider_prefs.item_count, 6u);
  EXPECT_EQ(result.site_prefs.size(), 6u);
  EXPECT_EQ(result.provider_sites.size(), 6u);
  EXPECT_EQ(result.experiments, 30u + 26u);
  std::size_t sites = 0;
  for (const auto& list : result.provider_sites) sites += list.size();
  EXPECT_EQ(sites, 15u);
}

}  // namespace
}  // namespace anyopt::core
