// Capacity (Appendix B Eq. 7) and workload-weighting extensions of the
// configuration search.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/optimizer.h"
#include "support/core_fixture.h"

namespace anyopt::core {
namespace {

using anyopt::testing::default_env;

OptimizerOptions quick() {
  OptimizerOptions opts;
  opts.time_budget_s = 20.0;
  opts.order_candidates = 6;
  return opts;
}

TEST(OptimizerConstraints, UncapacitatedEqualsDefault) {
  auto& pipeline = *default_env().pipeline;
  const SearchOutcome plain = pipeline.optimize(quick());
  OptimizerOptions opts = quick();
  opts.site_capacity.assign(15, 1e18);  // effectively unlimited
  const SearchOutcome capped = pipeline.optimize(opts);
  EXPECT_EQ(plain.best.config.announce_order,
            capped.best.config.announce_order);
  EXPECT_DOUBLE_EQ(plain.best.predicted_mean_rtt,
                   capped.best.predicted_mean_rtt);
}

TEST(OptimizerConstraints, TightCapacityChangesOrExcludesConfigs) {
  auto& pipeline = *default_env().pipeline;
  const SearchOutcome plain = pipeline.optimize(quick());

  // Find the busiest site of the unconstrained winner and cap it below
  // its predicted load.
  const Prediction pred = pipeline.predict(plain.best.config);
  std::vector<double> load(15, 0);
  for (const SiteId s : pred.site_of_target) {
    if (s.valid()) load[s.value()] += 1.0;
  }
  const std::size_t busiest = static_cast<std::size_t>(
      std::max_element(load.begin(), load.end()) - load.begin());

  OptimizerOptions opts = quick();
  opts.site_capacity.assign(15, 1e18);
  opts.site_capacity[busiest] = load[busiest] / 2;
  const SearchOutcome capped = pipeline.optimize(opts);
  ASSERT_FALSE(capped.best.config.announce_order.empty());
  // The new winner either avoids the capped site or sheds enough load.
  const Prediction new_pred = pipeline.predict(capped.best.config);
  double new_load = 0;
  for (const SiteId s : new_pred.site_of_target) {
    if (s.valid() && s.value() == busiest) new_load += 1.0;
  }
  EXPECT_LE(new_load, load[busiest] / 2 * 1.1 + 10.0);
  // Feasibility costs latency: the constrained optimum cannot beat the
  // unconstrained one.
  EXPECT_GE(capped.best.predicted_mean_rtt,
            plain.best.predicted_mean_rtt - 1e-9);
}

TEST(OptimizerConstraints, LoadExactlyAtCapacityPasses) {
  // The Eq. 7 gate is strictly greater-than: a site loaded exactly to its
  // capacity is feasible.  With a single enabled site every predictable
  // target lands on it, so the site's load is exactly the predictable
  // count and we can pin capacity to the boundary.
  auto& env = default_env();
  auto& pipeline = *env.pipeline;
  const SearchOutcome plain = pipeline.optimize(quick());
  ASSERT_FALSE(plain.best.config.announce_order.empty());
  const SiteId solo_site = plain.best.config.announce_order.front();
  const anycast::AnycastConfig solo =
      anycast::AnycastConfig::of_sites({solo_site});

  OptimizerOptions opts = quick();
  core::Optimizer unconstrained(pipeline.predictor(), opts);
  const EvaluatedConfig base = unconstrained.evaluate(solo);
  const double n = static_cast<double>(env.world->targets().size());
  const double load = std::round(base.fraction_ordered * n);
  ASSERT_GT(load, 0.0);

  opts.site_capacity.assign(15, 1e18);
  opts.site_capacity[solo_site.value()] = load;  // exactly at capacity
  core::Optimizer at_capacity(pipeline.predictor(), opts);
  EXPECT_TRUE(std::isfinite(at_capacity.evaluate(solo).predicted_mean_rtt));

  opts.site_capacity[solo_site.value()] = load - 0.5;  // just below
  core::Optimizer over_capacity(pipeline.predictor(), opts);
  EXPECT_FALSE(std::isfinite(over_capacity.evaluate(solo).predicted_mean_rtt));
}

TEST(OptimizerConstraints, ZeroCapacityWithZeroWeightCatchmentIsFeasible) {
  // Capacity 0 is not a poison value: the gate never divides by capacity,
  // so a drained site (capacity 0) under a drained workload (its whole
  // catchment weighted 0) is compliant.  The same zero-capacity site under
  // uniform weights gates the configuration.
  auto& env = default_env();
  auto& pipeline = *env.pipeline;
  const SearchOutcome plain = pipeline.optimize(quick());
  const anycast::AnycastConfig config = plain.best.config;
  ASSERT_GE(config.announce_order.size(), 2u);

  // Busiest site of the winner — guaranteed a non-empty catchment.
  const Prediction pred = pipeline.predict(config);
  std::vector<double> load(15, 0);
  for (const SiteId s : pred.site_of_target) {
    if (s.valid()) load[s.value()] += 1.0;
  }
  const std::size_t drained = static_cast<std::size_t>(
      std::max_element(load.begin(), load.end()) - load.begin());
  ASSERT_GT(load[drained], 0.0);

  OptimizerOptions opts = quick();
  opts.site_capacity.assign(15, 1e18);
  opts.site_capacity[drained] = 0.0;
  opts.target_weight.assign(env.world->targets().size(), 1.0);
  for (std::size_t t = 0; t < pred.site_of_target.size(); ++t) {
    // Zero out the drained site's catchment and the unpredictable targets
    // (the latter add no load either way; zeroing keeps the weights tidy).
    if (!pred.site_of_target[t].valid() ||
        pred.site_of_target[t].value() == drained) {
      opts.target_weight[t] = 0.0;
    }
  }
  core::Optimizer drained_workload(pipeline.predictor(), opts);
  EXPECT_TRUE(
      std::isfinite(drained_workload.evaluate(config).predicted_mean_rtt));

  OptimizerOptions uniform = quick();
  uniform.site_capacity = opts.site_capacity;
  core::Optimizer live_workload(pipeline.predictor(), uniform);
  EXPECT_FALSE(
      std::isfinite(live_workload.evaluate(config).predicted_mean_rtt));
}

TEST(OptimizerConstraints, ImpossibleCapacityYieldsNoConfig) {
  auto& pipeline = *default_env().pipeline;
  OptimizerOptions opts = quick();
  opts.site_capacity.assign(15, 0.0);  // nothing may carry traffic
  const SearchOutcome out = pipeline.optimize(opts);
  EXPECT_TRUE(out.best.config.announce_order.empty());
}

TEST(OptimizerConstraints, UniformWeightsMatchUnweighted) {
  auto& pipeline = *default_env().pipeline;
  const SearchOutcome plain = pipeline.optimize(quick());
  OptimizerOptions opts = quick();
  opts.target_weight.assign(default_env().world->targets().size(), 3.0);
  const SearchOutcome weighted = pipeline.optimize(opts);
  EXPECT_EQ(plain.best.config.announce_order,
            weighted.best.config.announce_order);
  EXPECT_NEAR(plain.best.predicted_mean_rtt,
              weighted.best.predicted_mean_rtt, 1e-6);
}

TEST(OptimizerConstraints, SkewedWeightsFollowTheHeavyClients) {
  // Put all workload on the clients of one region: the weighted objective
  // equals (approximately) those clients' mean RTT, so the optimum must
  // serve them well.
  auto& env = default_env();
  auto& pipeline = *env.pipeline;
  const std::size_t targets = env.world->targets().size();
  OptimizerOptions opts = quick();
  opts.target_weight.assign(targets, 0.001);
  // Weight the first quarter of targets heavily.
  for (std::size_t t = 0; t < targets / 4; ++t) {
    opts.target_weight[t] = 100.0;
  }
  const SearchOutcome weighted = pipeline.optimize(opts);
  ASSERT_FALSE(weighted.best.config.announce_order.empty());

  // Weighted mean under the returned config, recomputed independently.
  const Prediction pred = pipeline.predict(weighted.best.config);
  double heavy_sum = 0;
  std::size_t heavy_n = 0;
  for (std::size_t t = 0; t < targets / 4; ++t) {
    if (pred.rtt_ms[t] >= 0) {
      heavy_sum += pred.rtt_ms[t];
      ++heavy_n;
    }
  }
  ASSERT_GT(heavy_n, 0u);
  // The reported weighted objective must sit near the heavy clients' mean
  // (light clients contribute ~0.001 weight each).
  EXPECT_NEAR(weighted.best.predicted_mean_rtt, heavy_sum / heavy_n,
              0.12 * (heavy_sum / heavy_n) + 2.0);
}

}  // namespace
}  // namespace anyopt::core
