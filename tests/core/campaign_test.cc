#include "core/campaign.h"

#include <gtest/gtest.h>

#include "core/predictor.h"
#include "support/core_fixture.h"

namespace anyopt::core {
namespace {

using anyopt::testing::default_env;

Campaign current_campaign() {
  auto& pipeline = *default_env().pipeline;
  Campaign c;
  c.discovery = pipeline.discover();
  c.rtts = pipeline.measure_rtts();
  return c;
}

TEST(Campaign, RoundTripIsExact) {
  const Campaign original = current_campaign();
  const std::string text = save_campaign(original);
  const auto loaded = load_campaign(text);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(save_campaign(loaded.value()), text);
}

TEST(Campaign, RoundTripPreservesTables) {
  const Campaign original = current_campaign();
  const auto loaded = load_campaign(save_campaign(original));
  ASSERT_TRUE(loaded.ok());
  const Campaign& copy = loaded.value();
  EXPECT_EQ(copy.discovery.provider_prefs.outcome,
            original.discovery.provider_prefs.outcome);
  ASSERT_EQ(copy.discovery.site_prefs.size(),
            original.discovery.site_prefs.size());
  for (std::size_t p = 0; p < copy.discovery.site_prefs.size(); ++p) {
    EXPECT_EQ(copy.discovery.site_prefs[p].outcome,
              original.discovery.site_prefs[p].outcome);
  }
  EXPECT_EQ(copy.discovery.provider_sites,
            original.discovery.provider_sites);
  EXPECT_EQ(copy.discovery.experiments, original.discovery.experiments);
}

TEST(Campaign, RoundTripPreservesRtts) {
  const Campaign original = current_campaign();
  const auto loaded = load_campaign(save_campaign(original));
  ASSERT_TRUE(loaded.ok());
  const RttMatrix& a = original.rtts;
  const RttMatrix& b = loaded.value().rtts;
  ASSERT_EQ(a.site_count(), b.site_count());
  ASSERT_EQ(a.target_count(), b.target_count());
  for (std::size_t s = 0; s < a.site_count(); ++s) {
    for (std::size_t t = 0; t < a.target_count(); t += 7) {
      EXPECT_EQ(a.rtt(SiteId{static_cast<SiteId::underlying_type>(s)},
                      TargetId{static_cast<TargetId::underlying_type>(t)}),
                b.rtt(SiteId{static_cast<SiteId::underlying_type>(s)},
                      TargetId{static_cast<TargetId::underlying_type>(t)}));
    }
  }
}

TEST(Campaign, LoadedCampaignPredictsIdentically) {
  // The whole point: a reloaded campaign must drive the predictor to the
  // exact same answers as the live one.
  const Campaign original = current_campaign();
  const auto loaded = load_campaign(save_campaign(original));
  ASSERT_TRUE(loaded.ok());

  const auto& deployment = default_env().world->deployment();
  const Predictor live(deployment, original.discovery, original.rtts);
  const Predictor restored(deployment, loaded.value().discovery,
                           loaded.value().rtts);
  anycast::AnycastConfig cfg;
  cfg.announce_order = {SiteId{2}, SiteId{6}, SiteId{11}, SiteId{0}};
  const Prediction a = live.predict(cfg);
  const Prediction b = restored.predict(cfg);
  EXPECT_EQ(a.site_of_target, b.site_of_target);
  EXPECT_EQ(a.rtt_ms, b.rtt_ms);
}

TEST(Campaign, RejectsBadHeader) {
  EXPECT_FALSE(load_campaign("nonsense\n").ok());
}

TEST(Campaign, RejectsTruncation) {
  std::string text = save_campaign(current_campaign());
  text.resize(text.size() * 2 / 3);
  EXPECT_FALSE(load_campaign(text).ok());
}

TEST(Campaign, RejectsCorruptPreferenceCode) {
  std::string text = save_campaign(current_campaign());
  const auto pos = text.find("\np ");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 3] = '9';
  EXPECT_FALSE(load_campaign(text).ok());
}

TEST(Campaign, RejectsMissingEnd) {
  std::string text = save_campaign(current_campaign());
  text.resize(text.rfind("end"));
  EXPECT_FALSE(load_campaign(text).ok());
}

}  // namespace
}  // namespace anyopt::core
