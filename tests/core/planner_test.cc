#include "core/planner.h"

#include <gtest/gtest.h>

namespace anyopt::core {
namespace {

TEST(Planner, ReproducesPaperSection45Arithmetic) {
  // "We use 500 sites and 20 transit providers to approximate the Akamai
  //  DNS network ... 500 singleton experiments ... 380 pair-wise
  //  measurements ... the 500 singleton experiments will take
  //  500 x 2 / 4 = 250 hours or about 10 days ... the 380 pair-wise
  //  experiments will take 380 x 2 / 4 = 190 hours or around eight days."
  const MeasurementPlan plan = plan_measurements(PlannerInput{});
  EXPECT_EQ(plan.singleton_experiments, 500u);
  EXPECT_EQ(plan.provider_pairwise, 380u);
  EXPECT_EQ(plan.site_pairwise, 0u);  // RTT heuristic instead
  EXPECT_NEAR(plan.singleton_days, 250.0 / 24.0, 1e-9);
  EXPECT_NEAR(plan.pairwise_days, 190.0 / 24.0, 1e-9);
  EXPECT_NEAR(plan.total_days, (250.0 + 190.0) / 24.0, 1e-9);
}

TEST(Planner, Testbed15SitesIsFast) {
  PlannerInput input;
  input.sites = 15;
  input.transit_providers = 6;
  input.avg_sites_per_provider = 2.5;
  input.site_level_pairwise = true;
  const MeasurementPlan plan = plan_measurements(input);
  EXPECT_EQ(plan.singleton_experiments, 15u);
  EXPECT_EQ(plan.provider_pairwise, 30u);  // C(6,2) x 2
  EXPECT_GT(plan.site_pairwise, 0u);
  EXPECT_LT(plan.total_days, 3.0);
}

TEST(Planner, SiteLevelPairwiseGrowsQuadratically) {
  PlannerInput small;
  small.site_level_pairwise = true;
  small.avg_sites_per_provider = 5;
  PlannerInput large = small;
  large.avg_sites_per_provider = 25;
  const auto p_small = plan_measurements(small);
  const auto p_large = plan_measurements(large);
  // 25*24/2 / (5*4/2) = 30x
  EXPECT_NEAR(static_cast<double>(p_large.site_pairwise) /
                  static_cast<double>(p_small.site_pairwise),
              30.0, 0.2);
}

TEST(Planner, ParallelPrefixesDivideTime) {
  PlannerInput one;
  one.parallel_prefixes = 1;
  PlannerInput four = one;
  four.parallel_prefixes = 4;
  EXPECT_NEAR(plan_measurements(one).total_days,
              4.0 * plan_measurements(four).total_days, 1e-9);
}

TEST(Planner, NaiveConfigurationCountIsExponential) {
  PlannerInput input;
  input.sites = 15;
  EXPECT_EQ(plan_measurements(input).naive_configurations, 1u << 15);
  input.sites = 500;
  EXPECT_EQ(plan_measurements(input).naive_configurations,
            std::numeric_limits<std::size_t>::max());  // saturated
}

TEST(Planner, TotalsAddUp) {
  PlannerInput input;
  input.site_level_pairwise = true;
  const MeasurementPlan plan = plan_measurements(input);
  EXPECT_EQ(plan.total_experiments,
            plan.singleton_experiments + plan.provider_pairwise +
                plan.site_pairwise);
  EXPECT_NEAR(plan.total_days, plan.singleton_days + plan.pairwise_days,
              1e-9);
}

}  // namespace
}  // namespace anyopt::core
