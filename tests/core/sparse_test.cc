#include "core/sparse.h"

#include <gtest/gtest.h>

#include "core/predictor.h"
#include "core/rtt_matrix.h"
#include "support/core_fixture.h"

namespace anyopt::core {
namespace {

using anyopt::testing::default_env;

TEST(TransitiveComplete, InfersChainedStrictPreferences) {
  PairwiseTable table;
  table.init(3, 1);
  table.set(0, 1, 0, PrefKind::kStrictFirst);  // 0 > 1
  table.set(1, 2, 0, PrefKind::kStrictFirst);  // 1 > 2
  const std::size_t inferred = transitive_complete(table);
  EXPECT_EQ(inferred, 1u);
  EXPECT_EQ(table.get(0, 2, 0), PrefKind::kStrictFirst);
}

TEST(TransitiveComplete, InfersReverseDirection) {
  PairwiseTable table;
  table.init(3, 1);
  table.set(0, 1, 0, PrefKind::kStrictSecond);  // 1 > 0
  table.set(0, 2, 0, PrefKind::kStrictFirst);   // 0 > 2
  transitive_complete(table);
  EXPECT_EQ(table.get(1, 2, 0), PrefKind::kStrictFirst);  // 1 > 2
}

TEST(TransitiveComplete, OrderDependentEdgesAreNotUsed) {
  // An arrival-order tie is not a strict preference: 0 ~ 1 (OD) and
  // 1 > 2 must NOT imply 0 > 2.
  PairwiseTable table;
  table.init(3, 1);
  table.set(0, 1, 0, PrefKind::kOrderDependent);
  table.set(1, 2, 0, PrefKind::kStrictFirst);
  EXPECT_EQ(transitive_complete(table), 0u);
  EXPECT_EQ(table.get(0, 2, 0), PrefKind::kUnknown);
}

TEST(TransitiveComplete, ContradictionLeavesUnknown) {
  // 0 > 1 > 2 and 2 > 3 > 0 gives both 0 ->* 2 and 2 ->* 0: pair (0, 2)
  // (via measurements creating a cycle) must not be inferred either way.
  PairwiseTable table;
  table.init(4, 1);
  table.set(0, 1, 0, PrefKind::kStrictFirst);
  table.set(1, 2, 0, PrefKind::kStrictFirst);
  table.set(2, 3, 0, PrefKind::kStrictFirst);
  table.set(0, 3, 0, PrefKind::kStrictSecond);  // 3 > 0
  transitive_complete(table);
  // 0->1->2 infers 0>2, but 2->3->0 infers 2>0: contradiction => unknown.
  EXPECT_EQ(table.get(0, 2, 0), PrefKind::kUnknown);
}

TEST(TransitiveComplete, LongChainCloses) {
  PairwiseTable table;
  table.init(6, 1);
  for (std::size_t i = 0; i + 1 < 6; ++i) {
    table.set(i, i + 1, 0, PrefKind::kStrictFirst);
  }
  // 5 measured edges of the chain; the remaining C(6,2)-5 = 10 pairs all
  // follow by transitivity.
  EXPECT_EQ(transitive_complete(table), 10u);
  EXPECT_EQ(table.get(0, 5, 0), PrefKind::kStrictFirst);
}

TEST(TransitiveComplete, HandlesMoreThanEightItems) {
  // Regression: the closure used to pack its beats-matrix into a single
  // 64-bit word as bit i*8+j, which is a shift past the word width (UB)
  // from 8 items up.  A 12-provider chain exercises indices far beyond
  // that; run under -DANYOPT_SANITIZE=undefined this caught the original
  // packing.
  constexpr std::size_t kProviders = 12;
  PairwiseTable table;
  table.init(kProviders, 2);
  for (std::size_t t = 0; t < 2; ++t) {
    for (std::size_t i = 0; i + 1 < kProviders; ++i) {
      table.set(i, i + 1, t, PrefKind::kStrictFirst);  // chain 0 > 1 > ... > 11
    }
  }
  // C(12,2) = 66 pairs, 11 measured per client: 55 inferred each.
  EXPECT_EQ(transitive_complete(table), 2u * 55u);
  for (std::size_t t = 0; t < 2; ++t) {
    for (std::size_t i = 0; i < kProviders; ++i) {
      for (std::size_t j = i + 1; j < kProviders; ++j) {
        EXPECT_EQ(table.get(i, j, t), PrefKind::kStrictFirst)
            << "pair (" << i << ", " << j << ") client " << t;
      }
    }
  }
}

TEST(TransitiveComplete, ManyItemsReverseEdgesClose) {
  // >8 items with kStrictSecond edges: descending chain 9 > 8 > ... > 0
  // stored as (i, i+1) = kStrictSecond, closing across word boundaries.
  constexpr std::size_t kProviders = 10;
  PairwiseTable table;
  table.init(kProviders, 1);
  for (std::size_t i = 0; i + 1 < kProviders; ++i) {
    table.set(i, i + 1, 0, PrefKind::kStrictSecond);  // i+1 > i
  }
  EXPECT_EQ(transitive_complete(table), 36u);  // C(10,2) - 9
  EXPECT_EQ(table.get(0, 9, 0), PrefKind::kStrictSecond);  // 9 > 0
}

TEST(SparseDiscovery, ZeroBudgetMeasuresNothing) {
  const SparseDiscovery sparse(*default_env().orchestrator);
  const SparseResult result = sparse.run(0);
  EXPECT_EQ(result.pairs_measured, 0u);
  EXPECT_EQ(result.experiments, 0u);
  EXPECT_EQ(result.coverage, 0.0);
}

TEST(SparseDiscovery, FullBudgetCoversEssentiallyEveryone) {
  const SparseDiscovery sparse(*default_env().orchestrator);
  const SparseResult result = sparse.run(15);
  EXPECT_GE(result.pairs_measured, 10u);
  EXPECT_GT(result.coverage, 0.95);
  EXPECT_EQ(result.experiments, 2 * result.pairs_measured);
}

TEST(SparseDiscovery, ScheduleHasNoDuplicatePairs) {
  const SparseDiscovery sparse(*default_env().orchestrator);
  const SparseResult result = sparse.run(10);
  for (std::size_t a = 0; a < result.schedule.size(); ++a) {
    for (std::size_t b = a + 1; b < result.schedule.size(); ++b) {
      EXPECT_NE(result.schedule[a], result.schedule[b]);
    }
  }
}

TEST(SparseDiscovery, HalfBudgetResolvesMoreThanItMeasures) {
  const SparseDiscovery sparse(*default_env().orchestrator);
  const SparseResult result = sparse.run(8);
  EXPECT_LE(result.pairs_measured, 8u);
  // Inference must add information beyond the 8/15 measured share.
  EXPECT_GT(result.resolved_fraction, 8.0 / 15.0 + 0.02);
  EXPECT_GT(result.inferred_entries, 0u);
}

TEST(SparseDiscovery, ResolvedFractionIsMonotoneInBudget) {
  const SparseDiscovery sparse(*default_env().orchestrator);
  double last = -1;
  for (const std::size_t budget : {4u, 8u, 12u, 15u}) {
    const SparseResult result = sparse.run(budget);
    EXPECT_GE(result.resolved_fraction, last - 0.02) << "budget " << budget;
    last = result.resolved_fraction;
  }
}

TEST(SparseDiscovery, CompletedTablePredictsAlmostAsWellAsFull) {
  // The punchline of §6's "fewer experiments" direction: predictions from
  // the sparse+completed table agree with the fully measured table.  A
  // three-provider configuration needs only the 3 pairs among those
  // providers, which a 10-pair budget resolves for most clients.
  auto& env = default_env();
  const Predictor& full = env.pipeline->predictor();

  const SparseDiscovery sparse(*env.orchestrator);
  const SparseResult sparse_result = sparse.run(10);

  DiscoveryResult hybrid = full.discovery();
  hybrid.provider_prefs = sparse_result.table;
  const Predictor sparse_predictor(env.world->deployment(),
                                   std::move(hybrid), full.rtts(),
                                   SitePrefMode::kExperiments);

  // Sites 1 (Telia), 4 (Singapore/TATA), 5 (London/GTT): three providers.
  anycast::AnycastConfig cfg;
  cfg.announce_order = {SiteId{0}, SiteId{3}, SiteId{4}};
  const Prediction a = full.predict(cfg);
  const Prediction b = sparse_predictor.predict(cfg);
  std::size_t same = 0;
  std::size_t comparable = 0;
  for (std::size_t t = 0; t < a.site_of_target.size(); ++t) {
    if (!a.site_of_target[t].valid() || !b.site_of_target[t].valid()) {
      continue;
    }
    ++comparable;
    same += a.site_of_target[t] == b.site_of_target[t];
  }
  ASSERT_GT(comparable, a.site_of_target.size() / 3);
  EXPECT_GT(static_cast<double>(same) / static_cast<double>(comparable),
            0.9);
}

}  // namespace
}  // namespace anyopt::core
