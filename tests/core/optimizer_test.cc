#include "core/optimizer.h"

#include <gtest/gtest.h>

#include "support/core_fixture.h"

namespace anyopt::core {
namespace {

using anyopt::testing::default_env;

OptimizerOptions quick_options() {
  OptimizerOptions opts;
  opts.time_budget_s = 20.0;
  opts.order_candidates = 8;
  return opts;
}

TEST(Optimizer, SearchCoversAllSubsets) {
  const SearchOutcome out = default_env().pipeline->optimize(quick_options());
  EXPECT_TRUE(out.exhausted);
  EXPECT_EQ(out.configurations_evaluated, (1u << 15) - 1);
  ASSERT_EQ(out.best_per_size.size(), 16u);
  EXPECT_FALSE(out.best.config.announce_order.empty());
}

TEST(Optimizer, BestPerSizeHasRequestedSizes) {
  const SearchOutcome out = default_env().pipeline->optimize(quick_options());
  for (std::size_t k = 1; k <= 15; ++k) {
    EXPECT_EQ(out.best_per_size[k].config.announce_order.size(), k);
  }
}

TEST(Optimizer, BestBeatsGreedyBaselineOnPredictedRtt) {
  auto& pipeline = *default_env().pipeline;
  const SearchOutcome out = pipeline.optimize(quick_options());
  const Optimizer optimizer(pipeline.predictor(), quick_options());
  for (const std::size_t k : {4u, 8u, 12u}) {
    const auto greedy =
        Optimizer::greedy_unicast(pipeline.predictor().rtts(), k);
    const EvaluatedConfig greedy_eval = optimizer.evaluate(greedy);
    EXPECT_LE(out.best_per_size[k].predicted_mean_rtt,
              greedy_eval.predicted_mean_rtt + 1e-9)
        << "k=" << k;
  }
}

TEST(Optimizer, GlobalBestIsBestOfPerSize) {
  const SearchOutcome out = default_env().pipeline->optimize(quick_options());
  double best = std::numeric_limits<double>::infinity();
  for (const auto& slot : out.best_per_size) {
    if (!slot.config.announce_order.empty()) {
      best = std::min(best, slot.predicted_mean_rtt);
    }
  }
  EXPECT_DOUBLE_EQ(out.best.predicted_mean_rtt, best);
}

TEST(Optimizer, SizeBoundsRespected) {
  OptimizerOptions opts = quick_options();
  opts.min_sites = 3;
  opts.max_sites = 5;
  const SearchOutcome out = default_env().pipeline->optimize(opts);
  for (std::size_t k = 0; k < out.best_per_size.size(); ++k) {
    if (k < 3 || k > 5) {
      EXPECT_TRUE(out.best_per_size[k].config.announce_order.empty());
    } else {
      EXPECT_EQ(out.best_per_size[k].config.announce_order.size(), k);
    }
  }
}

TEST(Optimizer, SampledSearchRescoresOnFullTargets) {
  OptimizerOptions opts = quick_options();
  opts.target_sample = 150;
  const SearchOutcome sampled = default_env().pipeline->optimize(opts);
  // Re-scoring must make the reported numbers full-population numbers:
  // evaluating the winning config directly gives the same value.
  const Optimizer optimizer(default_env().pipeline->predictor(), opts);
  const EvaluatedConfig check = optimizer.evaluate(sampled.best.config);
  EXPECT_NEAR(check.predicted_mean_rtt, sampled.best.predicted_mean_rtt, 1e-9);
}

TEST(Optimizer, EvaluateMatchesPredictorOnOptimizerOrder) {
  // evaluate() uses the optimizer-chosen announcement order for the
  // provider subset; on the predictable population, predicting the *same
  // returned config* must agree with the search's bookkeeping closely.
  auto& pipeline = *default_env().pipeline;
  const SearchOutcome out = pipeline.optimize(quick_options());
  const auto& cfg = out.best_per_size[6].config;
  const Prediction direct = pipeline.predict(cfg);
  EXPECT_NEAR(direct.mean_rtt(), out.best_per_size[6].predictable_mean_rtt,
              0.05 * direct.mean_rtt() + 0.5);
  // And the imputed (population-wide) estimate sits at or above the
  // predictable-only mean only when the excluded clients are worse off —
  // either way both must be finite and ordered sanely.
  EXPECT_GT(out.best_per_size[6].predicted_mean_rtt, 0.0);
  EXPECT_LT(out.best_per_size[6].predicted_mean_rtt, 1e6);
}

TEST(Optimizer, GreedyUnicastPicksLowestMeanSites) {
  const RttMatrix& rtts = default_env().pipeline->predictor().rtts();
  const auto cfg = Optimizer::greedy_unicast(rtts, 4);
  ASSERT_EQ(cfg.announce_order.size(), 4u);
  const auto ranked = rtts.sites_by_mean();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cfg.announce_order[i], ranked[i]);
  }
}

TEST(Optimizer, RandomConfigShape) {
  Rng rng{3};
  const auto cfg = Optimizer::random_config(
      default_env().world->deployment(), 2, 2, rng);
  EXPECT_EQ(cfg.announce_order.size(), 4u);
  // Exactly two providers, two sites each.
  std::map<std::size_t, int> per_provider;
  for (const SiteId s : cfg.announce_order) {
    ++per_provider[default_env()
                       .world->deployment()
                       .site(s)
                       .provider.value()];
  }
  EXPECT_EQ(per_provider.size(), 2u);
  for (const auto& [p, n] : per_provider) EXPECT_EQ(n, 2);
}

TEST(Optimizer, MoreSitesWellChosenNeverHurtPrediction) {
  // best-per-size predicted RTT should be non-increasing in k: enabling a
  // site can always be avoided, so the optimum over k+1-site subsets is at
  // most ... NOT guaranteed in anycast (adding a site can hurt!), but the
  // *minimum over subsets of size <= k* is monotone.  Verify on the
  // cumulative minimum.
  const SearchOutcome out = default_env().pipeline->optimize(quick_options());
  double cummin = std::numeric_limits<double>::infinity();
  std::size_t argmin = 0;
  for (std::size_t k = 1; k <= 15; ++k) {
    if (out.best_per_size[k].predicted_mean_rtt < cummin) {
      cummin = out.best_per_size[k].predicted_mean_rtt;
      argmin = k;
    }
  }
  EXPECT_EQ(out.best.config.announce_order.size(), argmin);
  // And the paper's headline phenomenon: enabling all 15 sites is NOT the
  // best configuration.
  EXPECT_LT(out.best.predicted_mean_rtt,
            out.best_per_size[15].predicted_mean_rtt + 1e-9);
}

}  // namespace
}  // namespace anyopt::core
