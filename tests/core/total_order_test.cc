#include "core/total_order.h"

#include <gtest/gtest.h>

#include "netbase/rng.h"

namespace anyopt::core {
namespace {

TEST(PairIndex, EnumeratesUpperTriangle) {
  // n = 4: (0,1)=0 (0,2)=1 (0,3)=2 (1,2)=3 (1,3)=4 (2,3)=5
  EXPECT_EQ(pair_index(0, 1, 4), 0u);
  EXPECT_EQ(pair_index(0, 3, 4), 2u);
  EXPECT_EQ(pair_index(1, 2, 4), 3u);
  EXPECT_EQ(pair_index(2, 3, 4), 5u);
  EXPECT_EQ(pair_count(4), 6u);
  EXPECT_EQ(pair_count(1), 0u);
  EXPECT_EQ(pair_count(15), 105u);
}

TEST(PairwiseTable, SwappedViewFlipsStrictWinners) {
  PairwiseTable t;
  t.init(3, 1);
  t.set(0, 2, 0, PrefKind::kStrictFirst);
  EXPECT_EQ(t.get(0, 2, 0), PrefKind::kStrictFirst);
  EXPECT_EQ(t.get(2, 0, 0), PrefKind::kStrictSecond);
  t.set(0, 1, 0, PrefKind::kOrderDependent);
  EXPECT_EQ(t.get(1, 0, 0), PrefKind::kOrderDependent);  // symmetric
}

TEST(Tournament, TransitiveHasOrder) {
  Tournament t;
  t.init(3);
  t.set_winner(1, 0);
  t.set_winner(1, 2);
  t.set_winner(0, 2);
  const auto order = total_order_of(t);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<std::size_t>{1, 0, 2}));
}

TEST(Tournament, CycleHasNoOrder) {
  Tournament t;
  t.init(3);
  t.set_winner(0, 1);
  t.set_winner(1, 2);
  t.set_winner(2, 0);
  EXPECT_FALSE(total_order_of(t).has_value());
}

TEST(Tournament, SingleItemTrivial) {
  Tournament t;
  t.init(1);
  const auto order = total_order_of(t);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(order->size(), 1u);
}

TEST(Tournament, RandomTransitiveTournamentsAlwaysOrdered) {
  // Property: orient pairs by a random permutation -> transitive by
  // construction -> total_order_of must recover that permutation.
  Rng rng{42};
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 2 + rng.below(7);
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i) perm[i] = i;
    rng.shuffle(perm);
    std::vector<std::size_t> rank(n);
    for (std::size_t i = 0; i < n; ++i) rank[perm[i]] = i;
    Tournament t;
    t.init(n);
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        if (rank[a] < rank[b]) {
          t.set_winner(a, b);
        } else {
          t.set_winner(b, a);
        }
      }
    }
    const auto order = total_order_of(t);
    ASSERT_TRUE(order.has_value());
    EXPECT_EQ(*order, perm);
  }
}

TEST(BuildTournament, OrientsOrderDependentByArrival) {
  PairwiseTable table;
  table.init(2, 1);
  table.set(0, 1, 0, PrefKind::kOrderDependent);
  const std::vector<std::size_t> items{0, 1};
  {
    const std::vector<std::size_t> arrival{0, 1};  // item 0 announced first
    const auto order = target_total_order(table, 0, items, arrival);
    ASSERT_TRUE(order.has_value());
    EXPECT_EQ(order->front(), 0u);
  }
  {
    const std::vector<std::size_t> arrival{1, 0};  // item 1 announced first
    const auto order = target_total_order(table, 0, items, arrival);
    ASSERT_TRUE(order.has_value());
    EXPECT_EQ(order->front(), 1u);
  }
}

TEST(BuildTournament, UnknownOrInconsistentPairAborts) {
  PairwiseTable table;
  table.init(3, 2);
  table.set(0, 1, 0, PrefKind::kStrictFirst);
  table.set(0, 2, 0, PrefKind::kStrictFirst);
  table.set(1, 2, 0, PrefKind::kInconsistent);
  table.set(0, 1, 1, PrefKind::kStrictFirst);  // target 1: pair (0,2) unknown
  table.set(1, 2, 1, PrefKind::kStrictFirst);
  const std::vector<std::size_t> items{0, 1, 2};
  const std::vector<std::size_t> arrival{0, 1, 2};
  EXPECT_FALSE(build_tournament(table, 0, items, arrival).has_value());
  EXPECT_FALSE(build_tournament(table, 1, items, arrival).has_value());
}

TEST(BuildTournament, SubsetIgnoresOutsidePairs) {
  // The inconsistent pair (1,2) must not matter when only {0, 1} enabled.
  PairwiseTable table;
  table.init(3, 1);
  table.set(0, 1, 0, PrefKind::kStrictSecond);
  table.set(0, 2, 0, PrefKind::kStrictFirst);
  table.set(1, 2, 0, PrefKind::kInconsistent);
  const std::vector<std::size_t> items{0, 1};
  const std::vector<std::size_t> arrival{0, 1, 2};
  const auto order = target_total_order(table, 0, items, arrival);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ((*order)[0], 1u);  // item 1 (local position 1) wins
}

TEST(FractionWithTotalOrder, CountsCorrectly) {
  PairwiseTable table;
  table.init(3, 2);
  const std::vector<std::size_t> items{0, 1, 2};
  const std::vector<std::size_t> arrival{0, 1, 2};
  // Target 0: transitive strict. Target 1: cycle.
  table.set(0, 1, 0, PrefKind::kStrictFirst);
  table.set(0, 2, 0, PrefKind::kStrictFirst);
  table.set(1, 2, 0, PrefKind::kStrictFirst);
  table.set(0, 1, 1, PrefKind::kStrictFirst);   // 0 > 1
  table.set(1, 2, 1, PrefKind::kStrictFirst);   // 1 > 2
  table.set(0, 2, 1, PrefKind::kStrictSecond);  // 2 > 0 (cycle)
  EXPECT_DOUBLE_EQ(fraction_with_total_order(table, items, arrival), 0.5);
}

TEST(FractionWithTotalOrder, OrderDependentPairsNeverCycleAlone) {
  // Property (the paper's §4.2 fix): if ALL pairs are order-dependent, any
  // announcement order yields a total order (ties all resolve to arrival).
  Rng rng{7};
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 2 + rng.below(5);
    PairwiseTable table;
    table.init(n, 1);
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        table.set(a, b, 0, PrefKind::kOrderDependent);
      }
    }
    std::vector<std::size_t> items(n);
    std::vector<std::size_t> arrival(n);
    for (std::size_t i = 0; i < n; ++i) items[i] = i;
    for (std::size_t i = 0; i < n; ++i) arrival[i] = i;
    rng.shuffle(arrival);
    EXPECT_DOUBLE_EQ(fraction_with_total_order(table, items, arrival), 1.0);
  }
}

}  // namespace
}  // namespace anyopt::core
