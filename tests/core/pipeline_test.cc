#include "core/anyopt.h"

#include <gtest/gtest.h>

#include "support/core_fixture.h"

namespace anyopt::core {
namespace {

using anyopt::testing::default_env;

TEST(Pipeline, DiscoveryIsCached) {
  auto& pipeline = *default_env().pipeline;
  const DiscoveryResult& a = pipeline.discover();
  const std::size_t after_first = pipeline.experiments_run();
  const DiscoveryResult& b = pipeline.discover();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(pipeline.experiments_run(), after_first);
}

TEST(Pipeline, RttMatrixShapeMatchesWorld) {
  const RttMatrix& rtts = default_env().pipeline->measure_rtts();
  EXPECT_EQ(rtts.site_count(), 15u);
  EXPECT_EQ(rtts.target_count(), default_env().world->targets().size());
  for (std::size_t s = 0; s < 15; ++s) {
    EXPECT_GT(rtts.site_mean(SiteId{static_cast<SiteId::underlying_type>(s)}),
              0.0);
  }
}

TEST(Pipeline, EndToEndOptimizeAndTunePeers) {
  auto& pipeline = *default_env().pipeline;
  OptimizerOptions opts;
  opts.time_budget_s = 20.0;
  opts.order_candidates = 6;
  const SearchOutcome best = pipeline.optimize(opts);
  ASSERT_FALSE(best.best.config.announce_order.empty());

  const OnePassResult peers = pipeline.tune_peers(best.best.config);
  EXPECT_EQ(peers.with_beneficial_peers.announce_order,
            best.best.config.announce_order);
  EXPECT_LE(peers.predicted_mean_rtt, peers.baseline_mean_rtt + 1e-9);
}

TEST(Pipeline, OptimizedConfigCompetitiveWhenDeployed) {
  // The Fig. 6 end-to-end property.  At paper scale the optimizer beats
  // greedy by tens of ms (see bench_fig6); in the small test world the two
  // can tie, so assert the optimizer is at least competitive when actually
  // deployed, and that its measured mean is close to its prediction.
  auto& pipeline = *default_env().pipeline;
  OptimizerOptions opts;
  opts.time_budget_s = 20.0;
  const SearchOutcome out = pipeline.optimize(opts);
  const auto& anyopt12 = out.best_per_size[12];
  const auto greedy12 =
      Optimizer::greedy_unicast(pipeline.predictor().rtts(), 12);

  const auto& orch = *default_env().orchestrator;
  const double anyopt_mean = orch.measure(anyopt12.config, 0xF16).mean_rtt();
  const double greedy_mean = orch.measure(greedy12, 0xF17).mean_rtt();
  EXPECT_LT(anyopt_mean, greedy_mean * 1.03);
  EXPECT_NEAR(anyopt_mean, anyopt12.predicted_mean_rtt,
              0.15 * anyopt_mean);
}

TEST(Pipeline, SplpoInstanceIsConsistentWithPredictor) {
  auto& pipeline = *default_env().pipeline;
  const auto order =
      anycast::AnycastConfig::all_sites(default_env().world->deployment());
  const SplpoInstance inst = pipeline.splpo_instance(order);
  ASSERT_TRUE(inst.validate().ok());
  EXPECT_EQ(inst.site_count, 15u);
  // Clients = targets with a total order.
  const double fraction =
      pipeline.predictor().fraction_ordered(order);
  EXPECT_NEAR(static_cast<double>(inst.client_count) /
                  static_cast<double>(default_env().world->targets().size()),
              fraction, 1e-9);
  // Every client's preference list covers all 15 sites.
  for (const auto& prefs : inst.preference) {
    EXPECT_EQ(prefs.size(), 15u);
  }
}

TEST(Pipeline, SplpoGreedySolutionIsDeployable) {
  auto& pipeline = *default_env().pipeline;
  const auto order =
      anycast::AnycastConfig::all_sites(default_env().world->deployment());
  const SplpoInstance inst = pipeline.splpo_instance(order);
  const SplpoSolution sol = solve_greedy(inst, 12);
  ASSERT_TRUE(sol.feasible);
  EXPECT_LE(sol.open_sites.size(), 12u);
  EXPECT_GT(sol.mean_cost, 0.0);
}

TEST(Pipeline, ExperimentCounterTracksAllStages) {
  measure::Orchestrator orch(*default_env().world);
  AnyOptPipeline fresh(orch);
  EXPECT_EQ(fresh.experiments_run(), 0u);
  fresh.discover();
  const std::size_t after_discovery = fresh.experiments_run();
  EXPECT_EQ(after_discovery, 56u);  // 30 provider + 26 site level
  fresh.measure_rtts();
  EXPECT_EQ(fresh.experiments_run(), after_discovery + 15u);
}

}  // namespace
}  // namespace anyopt::core
