#include "core/predictor.h"

#include <gtest/gtest.h>

#include "netbase/rng.h"
#include "support/core_fixture.h"

namespace anyopt::core {
namespace {

using anyopt::testing::clean_env;
using anyopt::testing::default_env;

anycast::AnycastConfig random_order_config(std::size_t sites, Rng& rng) {
  std::vector<SiteId> order;
  std::vector<std::size_t> ids(15);
  for (std::size_t i = 0; i < 15; ++i) ids[i] = i;
  rng.shuffle(ids);
  for (std::size_t i = 0; i < sites; ++i) {
    order.push_back(SiteId{static_cast<SiteId::underlying_type>(ids[i])});
  }
  return anycast::AnycastConfig::of_sites(order);
}

class PredictorAccuracyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(PredictorAccuracyTest, CatchmentPredictionBeats90Percent) {
  const auto [site_count, seed] = GetParam();
  Rng rng{seed};
  const auto cfg = random_order_config(site_count, rng);
  const Prediction prediction = default_env().pipeline->predict(cfg);
  const measure::Census census =
      default_env().orchestrator->measure(cfg, 0xACC0 + seed);
  EXPECT_GT(prediction.accuracy_against(census), 0.90)
      << "config: " << cfg.describe();
}

TEST_P(PredictorAccuracyTest, MeanRttPredictionWithin15Percent) {
  const auto [site_count, seed] = GetParam();
  Rng rng{seed ^ 0x9999};
  const auto cfg = random_order_config(site_count, rng);
  const Prediction prediction = default_env().pipeline->predict(cfg);
  const measure::Census census =
      default_env().orchestrator->measure(cfg, 0xEE00 + seed);
  const double measured = census.mean_rtt();
  ASSERT_GT(measured, 0);
  EXPECT_LT(std::abs(prediction.mean_rtt() - measured) / measured, 0.15)
      << "config: " << cfg.describe();
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, PredictorAccuracyTest,
    ::testing::Combine(::testing::Values<std::size_t>(2, 5, 9, 14),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(Predictor, CleanWorldIsAlmostPerfectlyPredictable) {
  // Theorem A.2 property: with the sufficient conditions satisfied (no
  // deviant policies, no multipath) pairwise results predict any subset.
  Rng rng{5};
  double worst = 1.0;
  for (int trial = 0; trial < 4; ++trial) {
    const auto cfg = random_order_config(3 + rng.below(10), rng);
    const Prediction prediction = clean_env().pipeline->predict(cfg);
    const measure::Census census =
        clean_env().orchestrator->measure(cfg, 0xC1EA + trial);
    worst = std::min(worst, prediction.accuracy_against(census));
  }
  EXPECT_GT(worst, 0.99);
}

TEST(Predictor, CleanWorldHasNearTotalOrderCoverage) {
  // Not 100%: even with deterministic router-id selection, path-vector
  // routing admits multiple stable states reachable under different
  // message orderings ("BGP wedgies"), so a small fraction of pairwise
  // outcomes flip between experiments and those targets are excluded.
  const auto cfg =
      anycast::AnycastConfig::all_sites(clean_env().world->deployment());
  EXPECT_GT(clean_env().pipeline->predictor().fraction_ordered(cfg), 0.93);
}

TEST(Predictor, PredictedSiteIsHeadOfTotalOrder) {
  Rng rng{11};
  const auto cfg = random_order_config(8, rng);
  const Predictor& pred = default_env().pipeline->predictor();
  const Prediction prediction = pred.predict(cfg);
  for (std::uint32_t t = 0; t < 200; ++t) {
    const auto order = pred.total_order(TargetId{t}, cfg);
    // A full total order is stronger than what prediction needs (the
    // winner provider's site order suffices), so a valid prediction with
    // no full total order is fine — but when the full order exists, its
    // head must be the prediction.
    if (!order.has_value()) continue;
    ASSERT_FALSE(order->empty());
    EXPECT_EQ(prediction.site_of_target[t], order->front());
  }
}

TEST(Predictor, TotalOrderContainsExactlyEnabledSites) {
  Rng rng{13};
  const auto cfg = random_order_config(6, rng);
  const Predictor& pred = default_env().pipeline->predictor();
  for (std::uint32_t t = 0; t < 100; ++t) {
    const auto order = pred.total_order(TargetId{t}, cfg);
    if (!order.has_value()) continue;
    EXPECT_EQ(order->size(), cfg.announce_order.size());
    for (const SiteId s : *order) {
      EXPECT_TRUE(cfg.site_enabled(s));
    }
  }
}

TEST(Predictor, EmptyConfigPredictsNothing) {
  const Prediction prediction =
      default_env().pipeline->predict(anycast::AnycastConfig{});
  EXPECT_EQ(prediction.predicted_count(), 0u);
  EXPECT_EQ(prediction.mean_rtt(), 0.0);
}

TEST(Predictor, SingleSiteConfigPredictsThatSite) {
  anycast::AnycastConfig cfg;
  cfg.announce_order = {SiteId{4}};
  const Prediction prediction = default_env().pipeline->predict(cfg);
  EXPECT_GT(prediction.predicted_count(),
            default_env().world->targets().size() * 9 / 10);
  for (const SiteId s : prediction.site_of_target) {
    if (s.valid()) EXPECT_EQ(s, SiteId{4});
  }
}

TEST(Predictor, AnnouncementOrderChangesPredictions) {
  // Same site set, reversed announcement order: order-dependent targets
  // must flip, so the two predictions should differ somewhere.
  std::vector<SiteId> order;
  for (std::size_t p = 0; p < 6; ++p) {
    order.push_back(default_env()
                        .world->deployment()
                        .sites_of_provider(
                            ProviderId{static_cast<ProviderId::underlying_type>(p)})
                        .front());
  }
  const auto forward = anycast::AnycastConfig::of_sites(order);
  std::reverse(order.begin(), order.end());
  const auto backward = anycast::AnycastConfig::of_sites(order);
  const Prediction a = default_env().pipeline->predict(forward);
  const Prediction b = default_env().pipeline->predict(backward);
  std::size_t differs = 0;
  for (std::size_t t = 0; t < a.site_of_target.size(); ++t) {
    if (a.site_of_target[t].valid() && b.site_of_target[t].valid() &&
        a.site_of_target[t] != b.site_of_target[t]) {
      ++differs;
    }
  }
  EXPECT_GT(differs, 0u);
}

TEST(Predictor, RttRankingModeAgreesWithExperimentsMostly) {
  // §4.3's scaling heuristic: ranking sites by unicast RTT should usually
  // match the experimentally discovered intra-provider preferences.
  auto& env = default_env();
  const Predictor& experimental = env.pipeline->predictor();
  const Predictor heuristic(env.world->deployment(),
                            experimental.discovery(), experimental.rtts(),
                            SitePrefMode::kRttRanking);
  Rng rng{17};
  const auto cfg = random_order_config(10, rng);
  const Prediction a = experimental.predict(cfg);
  const Prediction b = heuristic.predict(cfg);
  std::size_t same = 0;
  std::size_t comparable = 0;
  for (std::size_t t = 0; t < a.site_of_target.size(); ++t) {
    if (!a.site_of_target[t].valid() || !b.site_of_target[t].valid()) continue;
    ++comparable;
    if (a.site_of_target[t] == b.site_of_target[t]) ++same;
  }
  ASSERT_GT(comparable, 0u);
  EXPECT_GT(static_cast<double>(same) / static_cast<double>(comparable), 0.8);
}

TEST(Predictor, FractionOrderedProvidersMatchesTableHelper) {
  const Predictor& pred = default_env().pipeline->predictor();
  const std::vector<std::size_t> providers{0, 1, 2};
  const std::vector<std::size_t> arrival{0, 1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(
      pred.fraction_ordered_providers(providers, arrival),
      fraction_with_total_order(pred.discovery().provider_prefs, providers,
                                arrival));
}

}  // namespace
}  // namespace anyopt::core
