// Determinism guarantees of the parallel campaign engine: content-derived
// nonces make every experiment's outcome a pure function of what is
// announced, so results are bit-identical across thread counts, campaign
// shapes, and schedules.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/discovery.h"
#include "core/peers.h"
#include "core/sparse.h"
#include "support/core_fixture.h"

namespace anyopt::core {
namespace {

using anyopt::testing::default_env;

DiscoveryOptions options_with_threads(std::size_t threads) {
  DiscoveryOptions options;
  options.threads = threads;
  return options;
}

TEST(ParallelEquivalence, DiscoveryRunBitIdenticalAcrossThreadCounts) {
  const auto& env = default_env();
  const Discovery serial(*env.orchestrator, options_with_threads(1));
  const Discovery parallel(*env.orchestrator, options_with_threads(4));

  const DiscoveryResult a = serial.run();
  const DiscoveryResult b = parallel.run();

  EXPECT_EQ(a.experiments, b.experiments);
  EXPECT_EQ(a.provider_sites, b.provider_sites);
  EXPECT_EQ(a.provider_prefs.outcome, b.provider_prefs.outcome);
  ASSERT_EQ(a.site_prefs.size(), b.site_prefs.size());
  for (std::size_t p = 0; p < a.site_prefs.size(); ++p) {
    EXPECT_EQ(a.site_prefs[p].outcome, b.site_prefs[p].outcome)
        << "provider " << p;
  }
}

TEST(ParallelEquivalence, ClassifyPairStandaloneMatchesFullRun) {
  // The nonce-determinism regression: a pair measured on its own must
  // produce byte-identical outcomes to the same pair inside a full
  // provider-level campaign.  Under the old shared-counter nonces the
  // standalone run drew different nonces and silently diverged.
  const auto& env = default_env();
  const Discovery discovery(*env.orchestrator, options_with_threads(1));
  const std::size_t providers =
      env.orchestrator->world().deployment().provider_count();

  std::size_t experiments = 0;
  const PairwiseTable campaign = discovery.provider_level(&experiments);

  for (std::size_t p = 0; p < providers; ++p) {
    for (std::size_t q = p + 1; q < providers; ++q) {
      const SiteId rep_p = discovery.representative(
          ProviderId{static_cast<ProviderId::underlying_type>(p)});
      const SiteId rep_q = discovery.representative(
          ProviderId{static_cast<ProviderId::underlying_type>(q)});
      ASSERT_TRUE(rep_p.valid() && rep_q.valid());
      std::size_t standalone_experiments = 0;
      const std::vector<PrefKind> standalone =
          discovery.classify_pair(rep_p, rep_q, &standalone_experiments);
      EXPECT_EQ(standalone_experiments, 2u);
      ASSERT_EQ(standalone.size(), campaign.target_count);
      for (std::size_t t = 0; t < standalone.size(); ++t) {
        ASSERT_EQ(standalone[t], campaign.get(p, q, t))
            << "pair (" << p << "," << q << ") target " << t;
      }
    }
  }
}

TEST(ParallelEquivalence, ExperimentNonceIsPositionIndependent) {
  const auto& env = default_env();
  const Discovery discovery(*env.orchestrator, options_with_threads(1));
  const SiteId a{0};
  const SiteId b{1};
  // Pure function of the announced content: repeated calls agree.
  EXPECT_EQ(discovery.experiment_nonce(a, b, 0),
            discovery.experiment_nonce(a, b, 0));
  // Distinct legs and distinct orientations are distinct experiments.
  EXPECT_NE(discovery.experiment_nonce(a, b, 0),
            discovery.experiment_nonce(a, b, 1));
  EXPECT_NE(discovery.experiment_nonce(a, b, 0),
            discovery.experiment_nonce(b, a, 0));
}

TEST(ParallelEquivalence, SparseBatchedRoundsMatchFullCampaignOutcomes) {
  // Every pair a sparse (batched, parallel) campaign measures must carry
  // exactly the outcome the exhaustive campaign records for that pair —
  // the schedule independence that content-derived nonces buy.
  const auto& env = default_env();
  const SparseDiscovery sparse(*env.orchestrator, options_with_threads(2));
  const Discovery discovery(*env.orchestrator, options_with_threads(1));

  std::size_t experiments = 0;
  const PairwiseTable full = discovery.provider_level(&experiments);
  const SparseResult result = sparse.run(/*max_pairs=*/4, /*batch=*/3);

  ASSERT_GT(result.pairs_measured, 0u);
  for (const auto& [i, j] : result.schedule) {
    for (std::size_t t = 0; t < full.target_count; ++t) {
      ASSERT_EQ(result.table.get(i, j, t), full.get(i, j, t))
          << "pair (" << i << "," << j << ") target " << t;
    }
  }
}

TEST(ParallelEquivalence, SparseSerialAndBatchedAgreeOnSchedulePrefix) {
  // batch == 1 is the reference sequential schedule; a batched run may pick
  // a different schedule but its first round must start from the same
  // highest-value pair, and both runs' measured tables must agree wherever
  // both measured (same pair -> same outcome, regardless of schedule).
  const auto& env = default_env();
  const SparseDiscovery sparse(*env.orchestrator, options_with_threads(1));
  const SparseResult serial = sparse.run(/*max_pairs=*/4, /*batch=*/1);
  const SparseResult batched = sparse.run(/*max_pairs=*/4, /*batch=*/2);

  ASSERT_FALSE(serial.schedule.empty());
  ASSERT_FALSE(batched.schedule.empty());
  EXPECT_EQ(serial.schedule.front(), batched.schedule.front());

  for (const auto& pair : serial.schedule) {
    const auto it =
        std::find(batched.schedule.begin(), batched.schedule.end(), pair);
    if (it == batched.schedule.end()) continue;
    for (std::size_t t = 0; t < serial.table.target_count; ++t) {
      ASSERT_EQ(serial.table.get(pair.first, pair.second, t),
                batched.table.get(pair.first, pair.second, t))
          << "pair (" << pair.first << "," << pair.second << ")";
    }
  }
}

TEST(ParallelEquivalence, OnePassPeersBitIdenticalAcrossThreadCounts) {
  const auto& env = default_env();
  const anycast::AnycastConfig baseline = anycast::AnycastConfig::all_sites(
      env.orchestrator->world().deployment());

  OnePassOptions serial_options;
  serial_options.threads = 1;
  OnePassOptions parallel_options;
  parallel_options.threads = 3;
  const OnePassPeerSelector serial(*env.orchestrator, serial_options);
  const OnePassPeerSelector parallel(*env.orchestrator, parallel_options);

  const OnePassResult a = serial.run(baseline);
  const OnePassResult b = parallel.run(baseline);

  EXPECT_EQ(a.baseline_mean_rtt, b.baseline_mean_rtt);
  EXPECT_EQ(a.chosen, b.chosen);
  EXPECT_EQ(a.predicted_mean_rtt, b.predicted_mean_rtt);
  EXPECT_EQ(a.experiments, b.experiments);
  ASSERT_EQ(a.peers.size(), b.peers.size());
  for (std::size_t k = 0; k < a.peers.size(); ++k) {
    EXPECT_EQ(a.peers[k].attachment, b.peers[k].attachment);
    EXPECT_EQ(a.peers[k].catchment_size, b.peers[k].catchment_size);
    EXPECT_EQ(a.peers[k].mean_rtt_ms, b.peers[k].mean_rtt_ms);
    EXPECT_EQ(a.peers[k].beneficial, b.peers[k].beneficial);
  }
}

TEST(ParallelEquivalence, RepresentativeInvalidForEmptyProviderIsSafe) {
  // A provider slot with no attached sites has no representative; the old
  // code dereferenced `sites.front()` on an empty vector (UB).  Provider
  // slots always have >= 1 site in a realized deployment, so exercise the
  // empty path with a slot index past the deployment's providers.
  const auto& env = default_env();
  const auto providers = static_cast<ProviderId::underlying_type>(
      env.orchestrator->world().deployment().provider_count());
  ASSERT_GE(providers, 2u);

  const Discovery discovery(*env.orchestrator);
  const ProviderId empty_slot{providers};
  EXPECT_FALSE(discovery.representative(empty_slot).valid());
  EXPECT_TRUE(discovery.representative(ProviderId{0}).valid());
  // order_flip_fraction's documented contract: 0.0 when either provider
  // has no representative, instead of announcing from an invalid site.
  EXPECT_EQ(discovery.order_flip_fraction(ProviderId{0}, empty_slot), 0.0);
  EXPECT_EQ(discovery.order_flip_fraction(empty_slot, ProviderId{0}), 0.0);
}

}  // namespace
}  // namespace anyopt::core
