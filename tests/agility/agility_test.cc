// The agility layer: demand/attack workload semantics (the Eq. 7 mirror),
// playbook algebra (config rewrites, injection deltas, content keys), and
// the mitigation search end to end on a test-scale world.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "agility/engine.h"
#include "agility/playbook.h"
#include "agility/workload.h"
#include "anycast/world.h"
#include "measure/orchestrator.h"
#include "netbase/fault.h"

namespace anyopt::agility {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Workload model.
// ---------------------------------------------------------------------------

TEST(Workload, PulseWindowIsHalfOpen) {
  AttackPulse pulse;
  pulse.start_s = 100;
  pulse.duration_s = 50;
  EXPECT_FALSE(pulse.active_at(99.9));
  EXPECT_TRUE(pulse.active_at(100));
  EXPECT_TRUE(pulse.active_at(149.9));
  EXPECT_FALSE(pulse.active_at(150));
}

TEST(Workload, WeightMultipliesActivePulses) {
  DemandModel demand;  // empty base = uniform 1.0
  AttackPulse a;
  a.start_s = 0;
  a.intensity = 3.0;
  a.targets = {2, 5};
  AttackPulse b;
  b.start_s = 10;
  b.duration_s = 10;
  b.intensity = 2.0;  // empty targets = everyone
  demand.pulses = {a, b};

  EXPECT_DOUBLE_EQ(demand.weight(2, 5.0), 3.0);   // only pulse a
  EXPECT_DOUBLE_EQ(demand.weight(3, 5.0), 1.0);   // untargeted
  EXPECT_DOUBLE_EQ(demand.weight(5, 15.0), 6.0);  // both pulses multiply
  EXPECT_DOUBLE_EQ(demand.weight(3, 15.0), 2.0);  // pulse b only
  EXPECT_DOUBLE_EQ(demand.weight(2, 25.0), 3.0);  // b expired

  demand.base_weight = {0.5, 0.5, 0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(demand.weight(2, 5.0), 1.5);
  EXPECT_DOUBLE_EQ(demand.total_weight(6, 5.0), 0.5 * 4 + 1.5 * 2);
}

/// A hand-built census: target t -> (site, rtt).
measure::Census tiny_census() {
  measure::Census census;
  census.site_of_target = {SiteId{0}, SiteId{0}, SiteId{1}, SiteId{},
                           SiteId{1}};
  census.attachment_of_target.assign(5, bgp::kNoAttachment);
  census.rtt_ms = {10, 20, 30, -1, 50};
  return census;
}

TEST(Workload, AssessComputesLoadsAndWeightedMeanRtt) {
  const measure::Census census = tiny_census();
  DemandModel demand;
  demand.base_weight = {1, 1, 2, 7, 4};  // target 3 is unreachable
  SloPolicy policy;  // uncapacitated, RTT unconstrained

  const SloState slo = assess(census, demand, policy, 2, 0.0);
  EXPECT_TRUE(slo.ok);
  ASSERT_EQ(slo.load.size(), 2u);
  EXPECT_DOUBLE_EQ(slo.load[0], 2.0);  // targets 0,1
  EXPECT_DOUBLE_EQ(slo.load[1], 6.0);  // targets 2,4 (3 carries no load)
  // Demand-weighted mean over measured targets: (10+20+2*30+4*50)/8.
  EXPECT_DOUBLE_EQ(slo.mean_rtt_ms, (10.0 + 20.0 + 60.0 + 200.0) / 8.0);
  EXPECT_DOUBLE_EQ(slo.worst_excess, 0.0);
}

TEST(Workload, AssessMirrorsTheEq7Edges) {
  const measure::Census census = tiny_census();
  DemandModel demand;  // uniform: load = {2, 2}

  // Load exactly at capacity passes (strict comparison).
  SloPolicy at;
  at.site_capacity = {2.0, 2.0};
  EXPECT_TRUE(assess(census, demand, at, 2, 0.0).ok);

  // Just below capacity fails, reporting the overloaded site + excess.
  SloPolicy under;
  under.site_capacity = {2.0, 1.5};
  const SloState broken = assess(census, demand, under, 2, 0.0);
  EXPECT_FALSE(broken.ok);
  ASSERT_EQ(broken.overloaded.size(), 1u);
  EXPECT_EQ(broken.overloaded[0], SiteId{1});
  EXPECT_DOUBLE_EQ(broken.worst_excess, 0.5);

  // Capacity 0 with zero demand on the catchment is compliant (the
  // documented optimizer edge; no division anywhere).
  DemandModel drained;
  drained.base_weight = {0, 0, 1, 1, 1};  // site 0's catchment weighs 0
  SloPolicy zero;
  zero.site_capacity = {0.0, 100.0};
  EXPECT_TRUE(assess(census, drained, zero, 2, 0.0).ok);

  // Sites beyond the capacity vector are uncapacitated.
  SloPolicy shorter;
  shorter.site_capacity = {2.0};
  EXPECT_TRUE(assess(census, demand, shorter, 2, 0.0).ok);

  // A pulse active at the assessment instant pushes the load over.
  DemandModel attacked;
  AttackPulse pulse;
  pulse.start_s = 50;
  pulse.intensity = 4.0;
  pulse.targets = {2, 4};  // site 1's catchment
  attacked.pulses = {pulse};
  EXPECT_TRUE(assess(census, attacked, at, 2, 0.0).ok);     // pre-attack
  const SloState under_attack = assess(census, attacked, at, 2, 60.0);
  EXPECT_FALSE(under_attack.ok);
  EXPECT_DOUBLE_EQ(under_attack.load[1], 8.0);

  // The RTT bound is part of the SLO.
  SloPolicy latency;
  latency.max_mean_rtt_ms = 20.0;
  EXPECT_FALSE(assess(census, demand, latency, 2, 0.0).ok);
}

// ---------------------------------------------------------------------------
// Playbooks.
// ---------------------------------------------------------------------------

TEST(Playbook, StepValidity) {
  const anycast::AnycastConfig config =
      anycast::AnycastConfig::of_sites({SiteId{0}, SiteId{3}});
  // Withdraw: announced sites only, never the last one standing.
  EXPECT_TRUE(step_valid(config, {Knob::kWithdraw, SiteId{3}, 0}));
  EXPECT_FALSE(step_valid(config, {Knob::kWithdraw, SiteId{1}, 0}));
  const anycast::AnycastConfig solo =
      anycast::AnycastConfig::of_sites({SiteId{0}});
  EXPECT_FALSE(step_valid(solo, {Knob::kWithdraw, SiteId{0}, 0}));
  // Prepend: announced, non-zero, and actually changing the depth.
  EXPECT_TRUE(step_valid(config, {Knob::kPrepend, SiteId{0}, 2}));
  EXPECT_FALSE(step_valid(config, {Knob::kPrepend, SiteId{0}, 0}));
  EXPECT_FALSE(step_valid(config, {Knob::kPrepend, SiteId{1}, 2}));
  // Re-announce: disabled sites only.
  EXPECT_TRUE(step_valid(config, {Knob::kReannounce, SiteId{7}, 0}));
  EXPECT_FALSE(step_valid(config, {Knob::kReannounce, SiteId{0}, 0}));
}

TEST(Playbook, ConfigAfterAppliesKnobsInSequence) {
  const anycast::AnycastConfig deployed =
      anycast::AnycastConfig::of_sites({SiteId{0}, SiteId{1}, SiteId{2}});
  Playbook playbook;
  playbook.steps = {{Knob::kPrepend, SiteId{1}, 2},
                    {Knob::kWithdraw, SiteId{0}, 0},
                    {Knob::kReannounce, SiteId{5}, 0}};

  const anycast::AnycastConfig zero = config_after(deployed, playbook, 0);
  EXPECT_EQ(zero.announce_order, deployed.announce_order);

  const anycast::AnycastConfig one = config_after(deployed, playbook, 1);
  ASSERT_GE(one.prepend.size(), 2u);
  EXPECT_EQ(one.prepend[1], 2);
  EXPECT_EQ(one.announce_order, deployed.announce_order);

  const anycast::AnycastConfig two = config_after(deployed, playbook, 2);
  EXPECT_EQ(two.announce_order,
            (std::vector<SiteId>{SiteId{1}, SiteId{2}}));
  ASSERT_EQ(two.prepend.size(), 2u);
  EXPECT_EQ(two.prepend[0], 2);  // site 1 keeps its prepend after the erase

  const anycast::AnycastConfig three = config_after(deployed, playbook, 3);
  EXPECT_EQ(three.announce_order,
            (std::vector<SiteId>{SiteId{1}, SiteId{2}, SiteId{5}}));
  ASSERT_EQ(three.prepend.size(), 3u);
  EXPECT_EQ(three.prepend[2], 0);
}

TEST(Playbook, DescribeIsReadable) {
  Playbook playbook;
  EXPECT_EQ(playbook.describe(), "hold");
  playbook.steps = {{Knob::kPrepend, SiteId{3}, 2},
                    {Knob::kWithdraw, SiteId{7}, 0},
                    {Knob::kReannounce, SiteId{1}, 0}};
  EXPECT_EQ(playbook.describe(), "prepend 3x2 > withdraw 7 > reannounce 1");
}

TEST(Playbook, PrefixKeysShareAndDiverge) {
  Playbook parent;
  parent.steps = {{Knob::kWithdraw, SiteId{2}, 0}};
  Playbook child;
  child.steps = {{Knob::kWithdraw, SiteId{2}, 0},
                 {Knob::kPrepend, SiteId{4}, 1}};
  const auto parent_keys = parent.prefix_keys(0xA61);
  const auto child_keys = child.prefix_keys(0xA61);
  ASSERT_EQ(parent_keys.size(), 1u);
  ASSERT_EQ(child_keys.size(), 2u);
  // A child's evaluation of its shared prefix must reuse the parent's
  // nonce bit for bit.
  EXPECT_EQ(parent_keys[0], child_keys[0]);
  EXPECT_NE(child_keys[0], child_keys[1]);
  // Content-derived: seed and step content both matter.
  EXPECT_NE(parent.prefix_keys(0xA62)[0], parent_keys[0]);
  Playbook other;
  other.steps = {{Knob::kWithdraw, SiteId{3}, 0}};
  EXPECT_NE(other.prefix_keys(0xA61)[0], parent_keys[0]);
}

// ---------------------------------------------------------------------------
// The mitigation search on a real (test-scale) world.
// ---------------------------------------------------------------------------

struct AgilityEnv {
  std::unique_ptr<anycast::World> world;
  std::unique_ptr<measure::Orchestrator> orchestrator;
  anycast::AnycastConfig deployed;
  measure::Census baseline;           ///< deployed census, no attack
  std::vector<double> baseline_load;  ///< uniform-weight load per site
  SiteId busiest;
  std::vector<std::uint32_t> busiest_catchment;  ///< sorted target ids
};

AgilityEnv& env() {
  static AgilityEnv e = [] {
    AgilityEnv out;
    out.world = anycast::World::create(anycast::WorldParams::test_scale(24));
    out.orchestrator = std::make_unique<measure::Orchestrator>(*out.world);
    // Deploy two thirds of the sites so re-announce is in the knob set.
    const std::size_t sites = out.world->deployment().site_count();
    std::vector<SiteId> order;
    for (std::size_t s = 0; s < sites * 2 / 3; ++s) {
      order.push_back(SiteId{static_cast<SiteId::underlying_type>(s)});
    }
    out.deployed = anycast::AnycastConfig::of_sites(order);
    out.baseline = out.orchestrator->measure(out.deployed, 0xBEEF);
    out.baseline_load.assign(sites, 0.0);
    for (std::size_t t = 0; t < out.baseline.site_of_target.size(); ++t) {
      const SiteId s = out.baseline.site_of_target[t];
      if (s.valid()) out.baseline_load[s.value()] += 1.0;
    }
    std::size_t busiest = 0;
    for (std::size_t s = 1; s < sites; ++s) {
      if (out.baseline_load[s] > out.baseline_load[busiest]) busiest = s;
    }
    out.busiest = SiteId{static_cast<SiteId::underlying_type>(busiest)};
    for (std::size_t t = 0; t < out.baseline.site_of_target.size(); ++t) {
      if (out.baseline.site_of_target[t] == out.busiest) {
        out.busiest_catchment.push_back(static_cast<std::uint32_t>(t));
      }
    }
    return out;
  }();
  return e;
}

/// An attack that quadruples the busiest site's catchment demand, against
/// a policy that caps ONLY that site (everyone else absorbs freely) — so
/// withdrawing or deeply prepending the attacked site is guaranteed to be
/// able to restore the SLO.
AgilityOptions attacked_options() {
  AgilityOptions options;
  options.slo.site_capacity.assign(env().baseline_load.size(), kInf);
  options.slo.site_capacity[env().busiest.value()] =
      env().baseline_load[env().busiest.value()] * 1.5 + 5.0;
  options.attack_time_s = 0.0;
  options.seed = 0xA61;
  return options;
}

DemandModel attacked_demand(double intensity = 4.0) {
  DemandModel demand;
  AttackPulse pulse;
  pulse.start_s = 0;
  pulse.intensity = intensity;
  pulse.targets = env().busiest_catchment;
  demand.pulses = {pulse};
  return demand;
}

TEST(AgilityEngine, QuietSloShortCircuits) {
  const AgilityEngine engine(*env().orchestrator, DemandModel{},
                             attacked_options());
  const MitigationResult result = engine.mitigate(env().deployed);
  EXPECT_FALSE(result.slo_violated);
  EXPECT_TRUE(result.baseline.ok);
  EXPECT_TRUE(result.best.mitigated);
  EXPECT_DOUBLE_EQ(result.best.time_to_mitigate_s, 0.0);
  EXPECT_EQ(result.candidates, 0u);
  EXPECT_TRUE(result.best.playbook.steps.empty());
}

TEST(AgilityEngine, AttackIsMitigatedAndScoredByTimeToMitigate) {
  const AgilityEngine engine(*env().orchestrator, attacked_demand(),
                             attacked_options());
  const MitigationResult result = engine.mitigate(env().deployed);
  ASSERT_TRUE(result.slo_violated);
  EXPECT_FALSE(result.baseline.ok);
  ASSERT_FALSE(result.baseline.overloaded.empty());
  EXPECT_EQ(result.baseline.overloaded.front(), env().busiest);
  EXPECT_GT(result.baseline.worst_excess, 0.0);

  ASSERT_TRUE(result.best.mitigated);
  ASSERT_FALSE(result.best.playbook.steps.empty());
  // TTM is the step-count clock, never below one knob + settle.
  const AgilityOptions& opts = engine.options();
  EXPECT_GE(result.best.time_to_mitigate_s, opts.knob_delay_s + opts.settle_s);
  EXPECT_DOUBLE_EQ(
      result.best.time_to_mitigate_s,
      static_cast<double>(result.best.steps_needed) * opts.knob_delay_s +
          opts.settle_s);
  EXPECT_TRUE(std::isfinite(result.best.post_mean_rtt_ms));
  EXPECT_GT(result.candidates, 0u);
  EXPECT_GT(result.total_sim_events, result.base_events);
  // The winning playbook's final state actually passes the SLO.
  EXPECT_TRUE(result.best.steps.back().slo.ok);
}

TEST(AgilityEngine, SearchIsDeterministic) {
  const AgilityEngine engine(*env().orchestrator, attacked_demand(),
                             attacked_options());
  const MitigationResult a = engine.mitigate(env().deployed);
  const MitigationResult b = engine.mitigate(env().deployed);
  EXPECT_EQ(a.best.playbook.steps, b.best.playbook.steps);
  EXPECT_EQ(a.best.time_to_mitigate_s, b.best.time_to_mitigate_s);
  EXPECT_EQ(a.best.post_mean_rtt_ms, b.best.post_mean_rtt_ms);
  EXPECT_EQ(a.candidates, b.candidates);
  EXPECT_EQ(a.pruned, b.pruned);
  EXPECT_EQ(a.total_sim_events, b.total_sim_events);
}

TEST(AgilityEngine, ComposesWithFaultInjection) {
  // An orchestrator whose fault layer plans session flaps: overlay
  // decomposition no longer applies and steps touching the flapped
  // session transparently fall back to classic measurement — the search
  // still runs and stays deterministic.
  fault::FaultPlan plan;
  plan.seed = 0xF417;
  fault::SessionFlap flap;
  flap.attachment = 0;
  plan.session_flaps.push_back(flap);
  const fault::FaultInjector injector(plan);
  measure::OrchestratorOptions with_faults;
  with_faults.faults = &injector;
  measure::Orchestrator faulty(*env().world, with_faults);

  const AgilityEngine engine(faulty, attacked_demand(), attacked_options());
  const MitigationResult a = engine.mitigate(env().deployed);
  const MitigationResult b = engine.mitigate(env().deployed);
  EXPECT_EQ(a.slo_violated, b.slo_violated);
  EXPECT_EQ(a.best.playbook.steps, b.best.playbook.steps);
  EXPECT_EQ(a.best.time_to_mitigate_s, b.best.time_to_mitigate_s);
  EXPECT_EQ(a.total_sim_events, b.total_sim_events);
}

}  // namespace
}  // namespace anyopt::agility
