// The agility engine's bit-identity claims, enforced end to end:
//
//  * thread invariance — a mitigation search over a worker pool returns the
//    exact result of the serial search (nonces are content hashes of
//    playbook prefixes, candidate slots are indexed, winner selection is a
//    serial total order);
//  * path invariance — the copy-on-write overlay evaluation returns the
//    exact result of classic per-step re-convergence (the `converge_base`
//    interchangeability contract), while the classic path pays measurably
//    more simulation events — the savings the bench records.
//
// Labelled `tsan`: the ThreadSanitizer build runs the pooled search to
// prove the parallel candidate evaluation is race-free, not just correct
// by luck.

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <vector>

#include "agility/engine.h"
#include "anycast/world.h"
#include "measure/orchestrator.h"
#include "netbase/thread_pool.h"

namespace anyopt::agility {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct InvarianceEnv {
  std::unique_ptr<anycast::World> world;
  std::unique_ptr<measure::Orchestrator> orchestrator;
  anycast::AnycastConfig deployed;
  DemandModel demand;
  SloPolicy slo;
};

/// One shared world with a sustained attack on the busiest site's
/// catchment, capacity-gated only at that site — every suite below runs
/// the SAME search and compares results field by field.
InvarianceEnv& env() {
  static InvarianceEnv e = [] {
    InvarianceEnv out;
    out.world = anycast::World::create(anycast::WorldParams::test_scale(25));
    out.orchestrator = std::make_unique<measure::Orchestrator>(*out.world);
    const std::size_t sites = out.world->deployment().site_count();
    std::vector<SiteId> order;
    for (std::size_t s = 0; s < sites * 2 / 3; ++s) {
      order.push_back(SiteId{static_cast<SiteId::underlying_type>(s)});
    }
    out.deployed = anycast::AnycastConfig::of_sites(order);

    const measure::Census baseline =
        out.orchestrator->measure(out.deployed, 0xA11CE);
    std::vector<double> load(sites, 0.0);
    for (const SiteId s : baseline.site_of_target) {
      if (s.valid()) load[s.value()] += 1.0;
    }
    std::size_t busiest = 0;
    for (std::size_t s = 1; s < sites; ++s) {
      if (load[s] > load[busiest]) busiest = s;
    }
    AttackPulse pulse;
    pulse.intensity = 4.0;
    for (std::size_t t = 0; t < baseline.site_of_target.size(); ++t) {
      if (baseline.site_of_target[t].value() == busiest) {
        pulse.targets.push_back(static_cast<std::uint32_t>(t));
      }
    }
    out.demand.pulses = {pulse};
    out.slo.site_capacity.assign(sites, kInf);
    out.slo.site_capacity[busiest] = load[busiest] * 1.5 + 5.0;
    return out;
  }();
  return e;
}

AgilityOptions search_options() {
  AgilityOptions options;
  options.slo = env().slo;
  options.seed = 0xA61;
  return options;
}

/// Field-by-field bit comparison of two search results (doubles compared
/// with == on purpose: the claim is identity, not closeness).  Event
/// counters are compared only when `compare_events` — the overlay-vs-
/// classic suite expects identical DECISIONS with different event costs.
void expect_identical(const MitigationResult& a, const MitigationResult& b,
                      bool compare_events = true) {
  EXPECT_EQ(a.slo_violated, b.slo_violated);
  EXPECT_EQ(a.baseline.ok, b.baseline.ok);
  EXPECT_EQ(a.baseline.load, b.baseline.load);
  EXPECT_EQ(a.baseline.mean_rtt_ms, b.baseline.mean_rtt_ms);
  EXPECT_EQ(a.baseline.overloaded, b.baseline.overloaded);
  EXPECT_EQ(a.baseline.worst_excess, b.baseline.worst_excess);
  EXPECT_EQ(a.best.playbook.steps, b.best.playbook.steps);
  EXPECT_EQ(a.best.mitigated, b.best.mitigated);
  EXPECT_EQ(a.best.time_to_mitigate_s, b.best.time_to_mitigate_s);
  EXPECT_EQ(a.best.post_mean_rtt_ms, b.best.post_mean_rtt_ms);
  EXPECT_EQ(a.best.steps_needed, b.best.steps_needed);
  if (compare_events) EXPECT_EQ(a.best.sim_events, b.best.sim_events);
  ASSERT_EQ(a.best.steps.size(), b.best.steps.size());
  for (std::size_t i = 0; i < a.best.steps.size(); ++i) {
    EXPECT_EQ(a.best.steps[i].slo.ok, b.best.steps[i].slo.ok);
    EXPECT_EQ(a.best.steps[i].slo.load, b.best.steps[i].slo.load);
    EXPECT_EQ(a.best.steps[i].slo.mean_rtt_ms, b.best.steps[i].slo.mean_rtt_ms);
    EXPECT_EQ(a.best.steps[i].at_s, b.best.steps[i].at_s);
    if (compare_events) {
      EXPECT_EQ(a.best.steps[i].sim_events, b.best.steps[i].sim_events);
    }
  }
  EXPECT_EQ(a.candidates, b.candidates);
  EXPECT_EQ(a.pruned, b.pruned);
}

TEST(AgilityInvariance, PooledSearchIsBitIdenticalToSerial) {
  const AgilityEngine serial(*env().orchestrator, env().demand,
                             search_options());
  const MitigationResult baseline = serial.mitigate(env().deployed);
  ASSERT_TRUE(baseline.slo_violated);
  ASSERT_TRUE(baseline.best.mitigated);

  for (const std::size_t workers : {2u, 4u}) {
    ThreadPool pool(workers);
    AgilityOptions options = search_options();
    options.pool = &pool;
    const AgilityEngine pooled(*env().orchestrator, env().demand, options);
    const MitigationResult result = pooled.mitigate(env().deployed);
    expect_identical(baseline, result);
    EXPECT_EQ(baseline.base_events, result.base_events);
    EXPECT_EQ(baseline.total_sim_events, result.total_sim_events);
  }
}

TEST(AgilityInvariance, OverlayPathMatchesClassicWithFewerEvents) {
  const AgilityEngine overlay(*env().orchestrator, env().demand,
                              search_options());
  AgilityOptions classic_options = search_options();
  classic_options.use_overlays = false;
  const AgilityEngine classic(*env().orchestrator, env().demand,
                              classic_options);

  const MitigationResult via_overlay = overlay.mitigate(env().deployed);
  const MitigationResult via_classic = classic.mitigate(env().deployed);
  ASSERT_TRUE(via_overlay.slo_violated);

  // Same decisions, same numbers — only the event accounting may differ.
  expect_identical(via_overlay, via_classic, /*compare_events=*/false);

  // ... and it must differ in the overlay's favor: classic re-converges a
  // private base per evaluation, the overlay path converges one shared
  // base and pays only delta propagation per step.
  EXPECT_GT(via_overlay.base_events, 0u);
  EXPECT_EQ(via_classic.base_events, 0u);
  EXPECT_LT(via_overlay.total_sim_events, via_classic.total_sim_events);
}

TEST(AgilityInvariance, PooledClassicAlsoMatches) {
  // The classic path under a pool: thread invariance must not depend on
  // the overlay machinery.
  AgilityOptions classic_options = search_options();
  classic_options.use_overlays = false;
  const AgilityEngine serial(*env().orchestrator, env().demand,
                             classic_options);
  ThreadPool pool(3);
  AgilityOptions pooled_options = classic_options;
  pooled_options.pool = &pool;
  const AgilityEngine pooled(*env().orchestrator, env().demand,
                             pooled_options);
  expect_identical(serial.mitigate(env().deployed),
                   pooled.mitigate(env().deployed));
}

}  // namespace
}  // namespace anyopt::agility
