#include "topo/as_graph.h"

#include <gtest/gtest.h>

namespace anyopt::topo {
namespace {

AsNode make_node(std::uint32_t asn, Tier tier) {
  AsNode n;
  n.asn = asn;
  n.tier = tier;
  return n;
}

TEST(Relation, ReverseIsInvolution) {
  for (const Relation r :
       {Relation::kCustomer, Relation::kPeer, Relation::kProvider}) {
    EXPECT_EQ(reverse(reverse(r)), r);
  }
  EXPECT_EQ(reverse(Relation::kCustomer), Relation::kProvider);
  EXPECT_EQ(reverse(Relation::kPeer), Relation::kPeer);
}

TEST(Relation, LocalPrefBandsOrdered) {
  EXPECT_GT(default_local_pref(Relation::kCustomer),
            default_local_pref(Relation::kPeer));
  EXPECT_GT(default_local_pref(Relation::kPeer),
            default_local_pref(Relation::kProvider));
}

TEST(AsGraph, ConnectCreatesSymmetricAdjacency) {
  AsGraph g;
  const AsId a = g.add_as(make_node(1, Tier::kTier1));
  const AsId b = g.add_as(make_node(2, Tier::kStub));
  // b's provider is a: from b's view a is provider; connect(b, a, provider).
  const auto link = g.connect(b, a, Relation::kProvider, {0, 0}, 1.0);
  ASSERT_TRUE(link.ok());
  EXPECT_EQ(g.relation(b, a).value(), Relation::kProvider);
  EXPECT_EQ(g.relation(a, b).value(), Relation::kCustomer);
}

TEST(AsGraph, RejectsSelfLink) {
  AsGraph g;
  const AsId a = g.add_as(make_node(1, Tier::kStub));
  EXPECT_FALSE(g.connect(a, a, Relation::kPeer, {0, 0}, 1.0).ok());
}

TEST(AsGraph, RejectsDuplicateLink) {
  AsGraph g;
  const AsId a = g.add_as(make_node(1, Tier::kTier1));
  const AsId b = g.add_as(make_node(2, Tier::kStub));
  ASSERT_TRUE(g.connect(b, a, Relation::kProvider, {0, 0}, 1.0).ok());
  EXPECT_FALSE(g.connect(b, a, Relation::kProvider, {0, 0}, 1.0).ok());
  EXPECT_FALSE(g.connect(a, b, Relation::kCustomer, {0, 0}, 1.0).ok());
}

TEST(AsGraph, RelationOfNonAdjacentFails) {
  AsGraph g;
  const AsId a = g.add_as(make_node(1, Tier::kStub));
  const AsId b = g.add_as(make_node(2, Tier::kStub));
  EXPECT_FALSE(g.relation(a, b).ok());
}

TEST(AsGraph, AsesOfTierFilters) {
  AsGraph g;
  g.add_as(make_node(1, Tier::kTier1));
  g.add_as(make_node(2, Tier::kStub));
  g.add_as(make_node(3, Tier::kTier1));
  EXPECT_EQ(g.ases_of_tier(Tier::kTier1).size(), 2u);
  EXPECT_EQ(g.ases_of_tier(Tier::kTransit).size(), 0u);
}

TEST(AsGraph, ValidateRequiresTier1Mesh) {
  AsGraph g;
  const AsId t1 = g.add_as(make_node(1, Tier::kTier1));
  const AsId t2 = g.add_as(make_node(2, Tier::kTier1));
  EXPECT_FALSE(g.validate().ok());  // not peered yet
  ASSERT_TRUE(g.connect(t1, t2, Relation::kPeer, {0, 0}, 1.0).ok());
  EXPECT_TRUE(g.validate().ok());
}

TEST(AsGraph, ValidateDetectsOrphanAs) {
  AsGraph g;
  const AsId t1 = g.add_as(make_node(1, Tier::kTier1));
  (void)t1;
  g.add_as(make_node(2, Tier::kStub));  // no provider
  EXPECT_FALSE(g.validate().ok());
}

TEST(AsGraph, ValidateAcceptsProviderChain) {
  AsGraph g;
  const AsId t1 = g.add_as(make_node(1, Tier::kTier1));
  const AsId mid = g.add_as(make_node(2, Tier::kTransit));
  const AsId stub = g.add_as(make_node(3, Tier::kStub));
  ASSERT_TRUE(g.connect(mid, t1, Relation::kProvider, {0, 0}, 1.0).ok());
  ASSERT_TRUE(g.connect(stub, mid, Relation::kProvider, {0, 0}, 1.0).ok());
  EXPECT_TRUE(g.validate().ok());
}

TEST(AsGraph, PeerOnlyStubFailsValidation) {
  AsGraph g;
  const AsId t1 = g.add_as(make_node(1, Tier::kTier1));
  const AsId stub = g.add_as(make_node(2, Tier::kStub));
  // A stub with only a peer link cannot be reached from the tier-1 clique
  // by descending customer edges.
  ASSERT_TRUE(g.connect(stub, t1, Relation::kPeer, {0, 0}, 1.0).ok());
  EXPECT_FALSE(g.validate().ok());
}

TEST(AsGraph, CustomerConeDescendsOnly) {
  AsGraph g;
  const AsId t1 = g.add_as(make_node(1, Tier::kTier1));
  const AsId mid = g.add_as(make_node(2, Tier::kTransit));
  const AsId stub = g.add_as(make_node(3, Tier::kStub));
  const AsId peer = g.add_as(make_node(4, Tier::kTransit));
  ASSERT_TRUE(g.connect(mid, t1, Relation::kProvider, {0, 0}, 1.0).ok());
  ASSERT_TRUE(g.connect(stub, mid, Relation::kProvider, {0, 0}, 1.0).ok());
  ASSERT_TRUE(g.connect(peer, mid, Relation::kPeer, {0, 0}, 1.0).ok());
  ASSERT_TRUE(g.connect(peer, t1, Relation::kProvider, {0, 0}, 1.0).ok());

  const auto cone = g.customer_cone(mid);
  EXPECT_EQ(cone.size(), 2u);  // mid + stub, not the peer
  const auto t1_cone = g.customer_cone(t1);
  EXPECT_EQ(t1_cone.size(), 4u);  // everyone
}

}  // namespace
}  // namespace anyopt::topo
