#include "topo/pop_network.h"

#include <gtest/gtest.h>

#include "netbase/geo.h"

namespace anyopt::topo {
namespace {

std::vector<Pop> sample_pops() {
  return {
      {"New York", geo::metro("New York").where},
      {"Chicago", geo::metro("Chicago").where},
      {"Los Angeles", geo::metro("Los Angeles").where},
      {"London", geo::metro("London").where},
      {"Tokyo", geo::metro("Tokyo").where},
  };
}

TEST(PopNetwork, AllPairsFiniteAndSymmetricIsh) {
  const PopNetwork net = PopNetwork::build(sample_pops(), 2, 0.0, Rng{1});
  for (std::size_t i = 0; i < net.pop_count(); ++i) {
    for (std::size_t j = 0; j < net.pop_count(); ++j) {
      const double d = net.igp_cost(i, j);
      EXPECT_TRUE(std::isfinite(d)) << i << "," << j;
      // Undirected links => symmetric shortest paths.
      EXPECT_DOUBLE_EQ(d, net.igp_cost(j, i));
    }
    EXPECT_DOUBLE_EQ(net.igp_cost(i, i), 0.0);
  }
}

TEST(PopNetwork, TriangleInequalityHolds) {
  const PopNetwork net = PopNetwork::build(sample_pops(), 3, 0.0, Rng{2});
  const std::size_t n = net.pop_count();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      for (std::size_t c = 0; c < n; ++c) {
        EXPECT_LE(net.igp_cost(a, c),
                  net.igp_cost(a, b) + net.igp_cost(b, c) + 1e-9);
      }
    }
  }
}

TEST(PopNetwork, IgpCostCorrelatesWithGeography) {
  // §4.3's heuristic depends on IGP distance tracking latency; nearby PoPs
  // must be IGP-closer than far ones.
  const PopNetwork net = PopNetwork::build(sample_pops(), 2, 0.0, Rng{3});
  const auto ny = net.pop_by_metro("New York").value();
  const auto chi = net.pop_by_metro("Chicago").value();
  const auto tyo = net.pop_by_metro("Tokyo").value();
  EXPECT_LT(net.igp_cost(ny, chi), net.igp_cost(ny, tyo));
}

TEST(PopNetwork, NearestPopPicksLocalOne) {
  const PopNetwork net = PopNetwork::build(sample_pops(), 2, 0.1, Rng{4});
  // A point in New Jersey should map to the New York PoP.
  const std::size_t idx = net.nearest_pop({40.0, -74.5});
  EXPECT_EQ(net.pop(idx).metro, "New York");
}

TEST(PopNetwork, PopByMetroFindsAndFails) {
  const PopNetwork net = PopNetwork::build(sample_pops(), 2, 0.1, Rng{5});
  EXPECT_TRUE(net.pop_by_metro("London").ok());
  EXPECT_FALSE(net.pop_by_metro("Mars").ok());
}

TEST(PopNetwork, SinglePopDegenerate) {
  const PopNetwork net = PopNetwork::build(
      {{"London", geo::metro("London").where}}, 3, 0.1, Rng{6});
  EXPECT_EQ(net.pop_count(), 1u);
  EXPECT_DOUBLE_EQ(net.igp_cost(0, 0), 0.0);
  EXPECT_EQ(net.nearest_pop({0, 0}), 0u);
}

TEST(PopNetwork, DeterministicForSameSeed) {
  const PopNetwork a = PopNetwork::build(sample_pops(), 2, 0.2, Rng{7});
  const PopNetwork b = PopNetwork::build(sample_pops(), 2, 0.2, Rng{7});
  EXPECT_EQ(a.distance_matrix(), b.distance_matrix());
}

TEST(PopNetwork, FromMatrixRoundTrips) {
  const PopNetwork a = PopNetwork::build(sample_pops(), 2, 0.2, Rng{8});
  const PopNetwork b =
      PopNetwork::from_matrix(sample_pops(), a.distance_matrix());
  EXPECT_EQ(a.distance_matrix(), b.distance_matrix());
  EXPECT_EQ(b.pop_count(), a.pop_count());
}

TEST(PopRegistry, AttachAndLookup) {
  PopRegistry reg;
  EXPECT_FALSE(reg.has(AsId{3}));
  reg.attach(AsId{3}, PopNetwork::build(sample_pops(), 2, 0.1, Rng{9}));
  EXPECT_TRUE(reg.has(AsId{3}));
  EXPECT_EQ(reg.network(AsId{3}).pop_count(), 5u);
  EXPECT_EQ(reg.attached_ases().size(), 1u);
  EXPECT_EQ(reg.attached_ases()[0], AsId{3});
}

}  // namespace
}  // namespace anyopt::topo
