#include "topo/path_latency.h"

#include <gtest/gtest.h>

namespace anyopt::topo {
namespace {

TEST(PolylineLatency, EmptyAndSingleAreZero) {
  EXPECT_DOUBLE_EQ(polyline_latency_ms({}), 0.0);
  const std::vector<geo::Coordinates> one{{10, 10}};
  EXPECT_DOUBLE_EQ(polyline_latency_ms(one), 0.0);
}

TEST(PolylineLatency, SingleSegmentMatchesDirectLatency) {
  const geo::Coordinates a{40.713, -74.006};
  const geo::Coordinates b{51.507, -0.128};
  const std::vector<geo::Coordinates> line{a, b};
  EXPECT_DOUBLE_EQ(polyline_latency_ms(line), geo::one_way_latency_ms(a, b));
}

TEST(PolylineLatency, DetourIsNeverShorterThanDirect) {
  const geo::Coordinates a{40.713, -74.006};   // New York
  const geo::Coordinates mid{25.762, -80.192}; // Miami detour
  const geo::Coordinates b{51.507, -0.128};    // London
  const std::vector<geo::Coordinates> direct{a, b};
  const std::vector<geo::Coordinates> detour{a, mid, b};
  EXPECT_GT(polyline_latency_ms(detour), polyline_latency_ms(direct));
}

TEST(PolylineLatency, AdditiveOverSegments) {
  const geo::Coordinates a{0, 0};
  const geo::Coordinates b{0, 10};
  const geo::Coordinates c{0, 20};
  const std::vector<geo::Coordinates> whole{a, b, c};
  EXPECT_NEAR(polyline_latency_ms(whole),
              geo::one_way_latency_ms(a, b) + geo::one_way_latency_ms(b, c),
              1e-12);
}

TEST(WaypointsFor, PrependsOriginAndFollowsLinkLocations) {
  AsGraph g;
  AsNode t1;
  t1.tier = Tier::kTier1;
  AsNode t2 = t1;
  AsNode stub;
  stub.tier = Tier::kStub;
  const AsId a = g.add_as(t1);
  const AsId b = g.add_as(t2);
  const AsId s = g.add_as(stub);
  const auto l1 = g.connect(a, b, Relation::kPeer, {10, 20}, 1.0);
  const auto l2 = g.connect(s, a, Relation::kProvider, {30, 40}, 1.0);
  ASSERT_TRUE(l1.ok());
  ASSERT_TRUE(l2.ok());

  const geo::Coordinates origin{1, 2};
  const std::vector<LinkId> links{l2.value(), l1.value()};
  const auto points = waypoints_for(g, origin, links);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].latitude_deg, 1);
  EXPECT_DOUBLE_EQ(points[1].latitude_deg, 30);
  EXPECT_DOUBLE_EQ(points[2].latitude_deg, 10);
}

TEST(WaypointsFor, NoLinksIsJustTheOrigin) {
  AsGraph g;
  const auto points = waypoints_for(g, {5, 6}, {});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].longitude_deg, 6);
}

}  // namespace
}  // namespace anyopt::topo
