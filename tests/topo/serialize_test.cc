#include "topo/serialize.h"

#include <gtest/gtest.h>

#include "topo/builder.h"

namespace anyopt::topo {
namespace {

InternetParams tiny_params(std::uint64_t seed) {
  InternetParams p;
  p.regional_transit_count = 8;
  p.access_transit_count = 10;
  p.stub_count = 60;
  p.extra_pops_per_tier1_min = 2;
  p.extra_pops_per_tier1_max = 3;
  p.seed = seed;
  return p;
}

TEST(Serialize, RoundTripIsExact) {
  const Internet original = build_internet(tiny_params(100));
  const std::string text = save_internet(original);
  const auto loaded = load_internet(text);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  // Bit-exact round trip: serializing again yields the same text.
  EXPECT_EQ(save_internet(loaded.value()), text);
}

TEST(Serialize, RoundTripPreservesStructure) {
  const Internet original = build_internet(tiny_params(101));
  const auto loaded = load_internet(save_internet(original));
  ASSERT_TRUE(loaded.ok());
  const Internet& copy = loaded.value();
  EXPECT_EQ(copy.graph.as_count(), original.graph.as_count());
  EXPECT_EQ(copy.graph.link_count(), original.graph.link_count());
  EXPECT_EQ(copy.tier1s, original.tier1s);
  EXPECT_EQ(copy.deviant_rank, original.deviant_rank);
  for (const AsId t : original.tier1s) {
    ASSERT_TRUE(copy.pops.has(t));
    EXPECT_EQ(copy.pops.network(t).distance_matrix(),
              original.pops.network(t).distance_matrix());
  }
}

TEST(Serialize, RoundTripPreservesPolicyFlags) {
  const Internet original = build_internet(tiny_params(102));
  const auto loaded = load_internet(save_internet(original));
  ASSERT_TRUE(loaded.ok());
  for (std::size_t i = 0; i < original.graph.as_count(); ++i) {
    const AsNode& a = original.graph.nodes()[i];
    const AsNode& b = loaded.value().graph.nodes()[i];
    EXPECT_EQ(a.multipath, b.multipath);
    EXPECT_EQ(a.deviant_policy, b.deviant_policy);
    EXPECT_EQ(a.prefers_oldest, b.prefers_oldest);
    EXPECT_EQ(a.router_id, b.router_id);
    EXPECT_EQ(a.asn, b.asn);
    EXPECT_EQ(a.name, b.name);
  }
}

TEST(Serialize, RejectsBadHeader) {
  EXPECT_FALSE(load_internet("not-a-topology\nend\n").ok());
}

TEST(Serialize, RejectsTruncatedFile) {
  const Internet original = build_internet(tiny_params(103));
  std::string text = save_internet(original);
  text.resize(text.size() / 2);
  EXPECT_FALSE(load_internet(text).ok());
}

TEST(Serialize, RejectsCorruptCounts) {
  const Internet original = build_internet(tiny_params(104));
  std::string text = save_internet(original);
  const auto pos = text.find("counts ");
  text.replace(pos, 8, "counts 9");
  EXPECT_FALSE(load_internet(text).ok());
}

TEST(Serialize, RejectsUnknownRecord) {
  EXPECT_FALSE(
      load_internet("anyopt-internet v1\nbogus 1 2 3\nend\n").ok());
}

TEST(Serialize, MetroNamesWithSpacesSurvive) {
  // "Los Angeles", "Sao Paulo" etc. must round-trip through the encoding.
  const Internet original = build_internet(tiny_params(105));
  const auto loaded = load_internet(save_internet(original));
  ASSERT_TRUE(loaded.ok());
  bool saw_space = false;
  for (const AsId t : loaded.value().tier1s) {
    const auto& pn = loaded.value().pops.network(t);
    for (std::size_t p = 0; p < pn.pop_count(); ++p) {
      if (pn.pop(p).metro.find(' ') != std::string::npos) saw_space = true;
    }
  }
  // The metro database contains multi-word names, so with 6 tier-1s at
  // least one PoP metro almost surely has a space; if not, the test is
  // vacuous but still passes round-trip above.
  SUCCEED() << (saw_space ? "multi-word metro survived" : "no multi-word metro");
}

}  // namespace
}  // namespace anyopt::topo
