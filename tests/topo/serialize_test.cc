#include "topo/serialize.h"

#include <gtest/gtest.h>

#include "topo/builder.h"

namespace anyopt::topo {
namespace {

InternetParams tiny_params(std::uint64_t seed) {
  InternetParams p;
  p.regional_transit_count = 8;
  p.access_transit_count = 10;
  p.stub_count = 60;
  p.extra_pops_per_tier1_min = 2;
  p.extra_pops_per_tier1_max = 3;
  p.seed = seed;
  return p;
}

TEST(Serialize, RoundTripIsExact) {
  const Internet original = build_internet(tiny_params(100));
  const std::string text = save_internet(original);
  const auto loaded = load_internet(text);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  // Bit-exact round trip: serializing again yields the same text.
  EXPECT_EQ(save_internet(loaded.value()), text);
}

TEST(Serialize, RoundTripPreservesStructure) {
  const Internet original = build_internet(tiny_params(101));
  const auto loaded = load_internet(save_internet(original));
  ASSERT_TRUE(loaded.ok());
  const Internet& copy = loaded.value();
  EXPECT_EQ(copy.graph.as_count(), original.graph.as_count());
  EXPECT_EQ(copy.graph.link_count(), original.graph.link_count());
  EXPECT_EQ(copy.tier1s, original.tier1s);
  EXPECT_EQ(copy.deviant_rank, original.deviant_rank);
  for (const AsId t : original.tier1s) {
    ASSERT_TRUE(copy.pops.has(t));
    EXPECT_EQ(copy.pops.network(t).distance_matrix(),
              original.pops.network(t).distance_matrix());
  }
}

TEST(Serialize, RoundTripPreservesPolicyFlags) {
  const Internet original = build_internet(tiny_params(102));
  const auto loaded = load_internet(save_internet(original));
  ASSERT_TRUE(loaded.ok());
  for (std::size_t i = 0; i < original.graph.as_count(); ++i) {
    const AsNode& a = original.graph.nodes()[i];
    const AsNode& b = loaded.value().graph.nodes()[i];
    EXPECT_EQ(a.multipath, b.multipath);
    EXPECT_EQ(a.deviant_policy, b.deviant_policy);
    EXPECT_EQ(a.prefers_oldest, b.prefers_oldest);
    EXPECT_EQ(a.router_id, b.router_id);
    EXPECT_EQ(a.asn, b.asn);
    EXPECT_EQ(a.name, b.name);
  }
}

TEST(Serialize, RejectsBadHeader) {
  EXPECT_FALSE(load_internet("not-a-topology\nend\n").ok());
}

TEST(Serialize, RejectsTruncatedFile) {
  const Internet original = build_internet(tiny_params(103));
  std::string text = save_internet(original);
  text.resize(text.size() / 2);
  EXPECT_FALSE(load_internet(text).ok());
}

TEST(Serialize, RejectsCorruptCounts) {
  const Internet original = build_internet(tiny_params(104));
  std::string text = save_internet(original);
  const auto pos = text.find("counts ");
  text.replace(pos, 8, "counts 9");
  EXPECT_FALSE(load_internet(text).ok());
}

TEST(Serialize, RejectsUnknownRecord) {
  EXPECT_FALSE(
      load_internet("anyopt-internet v1\nbogus 1 2 3\nend\n").ok());
}

TEST(Serialize, MetroNamesWithSpacesSurvive) {
  // "Los Angeles", "Sao Paulo" etc. must round-trip through the encoding.
  const Internet original = build_internet(tiny_params(105));
  const auto loaded = load_internet(save_internet(original));
  ASSERT_TRUE(loaded.ok());
  bool saw_space = false;
  for (const AsId t : loaded.value().tier1s) {
    const auto& pn = loaded.value().pops.network(t);
    for (std::size_t p = 0; p < pn.pop_count(); ++p) {
      if (pn.pop(p).metro.find(' ') != std::string::npos) saw_space = true;
    }
  }
  // The metro database contains multi-word names, so with 6 tier-1s at
  // least one PoP metro almost surely has a space; if not, the test is
  // vacuous but still passes round-trip above.
  SUCCEED() << (saw_space ? "multi-word metro survived" : "no multi-word metro");
}

TEST(Serialize, RandomizedRoundTripPropertySweep) {
  // Property: load(save(net)) == net, bit for bit, over a spread of
  // generated worlds — policy mixes, PoP densities and sizes all vary.
  for (std::uint64_t seed = 400; seed < 410; ++seed) {
    InternetParams p = tiny_params(seed);
    p.stub_count = 40 + static_cast<int>(seed % 5) * 25;
    p.extra_pops_per_tier1_max = 3 + static_cast<int>(seed % 3);
    p.deviant_fraction = 0.02 * static_cast<double>(seed % 4);
    p.multipath_fraction = 0.05 * static_cast<double>(seed % 3);
    p.oldest_pref_fraction = (seed % 2 == 0) ? 0.9 : 0.3;
    p.transit_peer_prob = (seed % 3 == 0) ? 0.0 : 0.25;
    const Internet original = build_internet(p);
    const std::string text = save_internet(original);
    const auto loaded = load_internet(text);
    ASSERT_TRUE(loaded.ok()) << "seed " << seed << ": "
                             << loaded.error().message;
    EXPECT_EQ(save_internet(loaded.value()), text) << "seed " << seed;
    EXPECT_EQ(loaded.value().deviant_rank, original.deviant_rank);
    for (const AsId t : original.tier1s) {
      ASSERT_TRUE(loaded.value().pops.has(t)) << "seed " << seed;
      EXPECT_EQ(loaded.value().pops.network(t).distance_matrix(),
                original.pops.network(t).distance_matrix());
    }
  }
}

/// Line number (1-based) of the first line starting with `prefix`.
std::size_t line_of(const std::string& text, const std::string& prefix) {
  std::size_t lineno = 1;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    if (text.compare(pos, prefix.size(), prefix) == 0) return lineno;
    if (eol == std::string::npos) break;
    pos = eol + 1;
    ++lineno;
  }
  return 0;
}

/// Replaces the first line starting with `prefix` by `replacement` and
/// returns the diagnostic that `load_internet` produces.
std::string diagnostic_for(std::string text, const std::string& prefix,
                           const std::string& replacement) {
  const std::size_t pos = text.find(prefix);
  EXPECT_NE(pos, std::string::npos) << prefix;
  const std::size_t eol = text.find('\n', pos);
  text.replace(pos, eol - pos, replacement);
  const auto loaded = load_internet(text);
  EXPECT_FALSE(loaded.ok()) << "corrupt '" << prefix << "' line accepted";
  return loaded.ok() ? std::string{} : loaded.error().message;
}

TEST(Serialize, DiagnosticsNameTheFailingLine) {
  InternetParams params = tiny_params(106);
  params.deviant_fraction = 0.3;  // guarantee a 'deviant' line to corrupt
  const std::string text = save_internet(build_internet(params));
  const struct {
    const char* prefix;
    const char* replacement;
    const char* expect;
  } cases[] = {
      {"as ", "as broken", "bad as line"},
      {"link ", "link 0", "bad link line"},
      {"popnet ", "popnet", "bad popnet line"},
      {"pop ", "pop 1", "bad pop line"},
      {"deviant ", "deviant", "bad deviant line"},
      {"counts ", "counts x y z", "bad counts line"},
  };
  for (const auto& c : cases) {
    const std::size_t lineno = line_of(text, c.prefix);
    ASSERT_GT(lineno, 0u) << c.prefix;
    const std::string message = diagnostic_for(text, c.prefix, c.replacement);
    EXPECT_NE(message.find(c.expect), std::string::npos) << message;
    EXPECT_NE(message.find("at line " + std::to_string(lineno)),
              std::string::npos)
        << "'" << message << "' should name line " << lineno;
  }
}

TEST(Serialize, RecordsOutsideTheirPopnetAreRejected) {
  const auto pop = load_internet(
      "anyopt-internet v1\npop 1 2 Boston\nend\n");
  ASSERT_FALSE(pop.ok());
  EXPECT_NE(pop.error().message.find("pop record outside a popnet"),
            std::string::npos);
  EXPECT_NE(pop.error().message.find("at line 2"), std::string::npos);

  const auto igp = load_internet("anyopt-internet v1\nigp 0\nend\n");
  ASSERT_FALSE(igp.ok());
  EXPECT_NE(igp.error().message.find("igp record outside a popnet"),
            std::string::npos);
}

TEST(Serialize, PopnetReferencingUnknownAsIsRejected) {
  const std::string text = save_internet(build_internet(tiny_params(107)));
  const std::string message =
      diagnostic_for(text, "popnet ", "popnet 999999 1");
  EXPECT_NE(message.find("popnet references unknown AS"), std::string::npos)
      << message;
}

TEST(Serialize, FingerprintIsStableAndSensitive) {
  const InternetParams params = tiny_params(108);
  const Internet a = build_internet(params);
  const Internet b = build_internet(params);
  // Deterministic: two builds from the same params agree.
  EXPECT_EQ(topology_fingerprint(a), topology_fingerprint(b));
  // A different world (new seed) gets a different fingerprint.
  EXPECT_NE(topology_fingerprint(a),
            topology_fingerprint(build_internet(tiny_params(109))));
  // Single-field sensitivity: flipping one policy bit, editing one
  // router-id, or re-ranking one deviant table all change the hash.
  Internet c = build_internet(params);
  c.graph.node_mut(AsId{3}).multipath = !c.graph.node_mut(AsId{3}).multipath;
  EXPECT_NE(topology_fingerprint(a), topology_fingerprint(c));

  Internet d = build_internet(params);
  d.graph.node_mut(AsId{5}).router_id ^= 1;
  EXPECT_NE(topology_fingerprint(a), topology_fingerprint(d));

  Internet e = build_internet(params);
  ASSERT_FALSE(e.deviant_rank.empty());
  e.deviant_rank[0].push_back(0);
  EXPECT_NE(topology_fingerprint(a), topology_fingerprint(e));
}

}  // namespace
}  // namespace anyopt::topo
