#include "topo/builder.h"

#include <gtest/gtest.h>

#include "topo/serialize.h"

namespace anyopt::topo {
namespace {

InternetParams small_params(std::uint64_t seed) {
  InternetParams p;
  p.regional_transit_count = 12;
  p.access_transit_count = 16;
  p.stub_count = 120;
  p.extra_pops_per_tier1_min = 2;
  p.extra_pops_per_tier1_max = 4;
  p.seed = seed;
  return p;
}

TEST(Builder, GeneratedTopologyValidates) {
  const Internet net = build_internet(small_params(1));
  EXPECT_TRUE(net.graph.validate().ok());
}

TEST(Builder, HasRequestedTierSizes) {
  const auto params = small_params(2);
  const Internet net = build_internet(params);
  EXPECT_EQ(net.tier1s.size(), params.tier1_names.size());
  EXPECT_EQ(net.graph.ases_of_tier(Tier::kTier1).size(), 6u);
  EXPECT_EQ(net.graph.ases_of_tier(Tier::kTransit).size(),
            static_cast<std::size_t>(params.regional_transit_count +
                                     params.access_transit_count));
  EXPECT_EQ(net.graph.ases_of_tier(Tier::kStub).size(),
            static_cast<std::size_t>(params.stub_count));
}

TEST(Builder, Tier1sHavePopNetworks) {
  const Internet net = build_internet(small_params(3));
  for (const AsId t : net.tier1s) {
    EXPECT_TRUE(net.pops.has(t));
    EXPECT_GE(net.pops.network(t).pop_count(), 2u);
  }
}

TEST(Builder, RequiredPopsAreHonored) {
  auto params = small_params(4);
  params.required_tier1_pops = {{"Atlanta", "Stockholm"},
                                {"Los Angeles"},
                                {"Singapore"},
                                {"London"},
                                {"Tokyo", "Miami"},
                                {"Sao Paulo"}};
  const Internet net = build_internet(params);
  EXPECT_TRUE(
      net.pops.network(net.tier1_by_name("Telia")).pop_by_metro("Atlanta").ok());
  EXPECT_TRUE(net.pops.network(net.tier1_by_name("NTT")).pop_by_metro("Miami").ok());
  EXPECT_TRUE(
      net.pops.network(net.tier1_by_name("Sparkle")).pop_by_metro("Sao Paulo").ok());
}

TEST(Builder, Tier1ByNameThrowsOnUnknown) {
  const Internet net = build_internet(small_params(5));
  EXPECT_NO_THROW((void)net.tier1_by_name("Telia"));
  EXPECT_THROW((void)net.tier1_by_name("NoSuchCarrier"),
               std::invalid_argument);
}

TEST(Builder, DeterministicForSameSeed) {
  const Internet a = build_internet(small_params(6));
  const Internet b = build_internet(small_params(6));
  EXPECT_EQ(save_internet(a), save_internet(b));
}

TEST(Builder, DifferentSeedsDiffer) {
  const Internet a = build_internet(small_params(7));
  const Internet b = build_internet(small_params(8));
  EXPECT_NE(save_internet(a), save_internet(b));
}

TEST(Builder, PolicyFlagFractionsRoughlyRespected) {
  auto params = small_params(9);
  params.stub_count = 600;
  const Internet net = build_internet(params);
  std::size_t multipath = 0;
  std::size_t deviant = 0;
  std::size_t oldest = 0;
  for (const AsNode& n : net.graph.nodes()) {
    multipath += n.multipath;
    deviant += n.deviant_policy;
    oldest += n.prefers_oldest;
  }
  const double total = static_cast<double>(net.graph.as_count());
  EXPECT_NEAR(static_cast<double>(multipath) / total,
              params.multipath_fraction, 0.03);
  EXPECT_NEAR(static_cast<double>(deviant) / total, params.deviant_fraction,
              0.03);
  EXPECT_NEAR(static_cast<double>(oldest) / total,
              params.oldest_pref_fraction, 0.05);
}

TEST(Builder, DeviantTablesOnlyForDeviantAses) {
  const Internet net = build_internet(small_params(10));
  ASSERT_EQ(net.deviant_rank.size(), net.graph.as_count());
  for (std::size_t i = 0; i < net.graph.as_count(); ++i) {
    if (net.graph.nodes()[i].deviant_policy) {
      EXPECT_EQ(net.deviant_rank[i].size(), net.tier1s.size());
    } else {
      EXPECT_TRUE(net.deviant_rank[i].empty());
    }
  }
}

TEST(Builder, Tier1sNeverDeviant) {
  const Internet net = build_internet(small_params(11));
  for (const AsId t : net.tier1s) {
    EXPECT_FALSE(net.graph.node(t).deviant_policy);
  }
}

TEST(Builder, StubsHaveProviders) {
  const Internet net = build_internet(small_params(12));
  for (const AsId s : net.graph.ases_of_tier(Tier::kStub)) {
    bool has_provider = false;
    for (const Neighbor& n : net.graph.node(s).neighbors) {
      has_provider |= n.relation == Relation::kProvider;
    }
    EXPECT_TRUE(has_provider) << "stub " << net.graph.node(s).asn;
  }
}

}  // namespace
}  // namespace anyopt::topo
